"""Tests for the round-driven serving subsystem (``repro.serve``).

The load-bearing claims of PR 4:

* **Admission control is free and per-shard** — a rejected request charges
  zero ledger rounds and carries a stable reason; the rejection rule is
  exactly "the source's shard sits below watermark and its estimated
  refill cost exceeds the request's round budget".
* **Deadlines are counted, never dropped** — a request that completes after
  its deadline round still returns its result and increments the miss
  counter.
* **No starvation** — a 10× hot-source stream cannot starve queued
  cold-source requests: (priority, deadline, FIFO) ordering services every
  earlier cold ticket no later than any later hot one.
* **Charged attribution balances** — shared cohort work lands in the
  ``"serve"``/``"pool-refill"`` phase families and never leaks into a
  request's private delta, yet per-cohort attributed rounds sum exactly to
  the ledger: requests + maintenance = session total, to the round.
* **Exactness survives merging** — endpoints of concurrently scheduled
  requests follow the exact ``P^ℓ`` law (chi-square), trajectories are
  genuine walks, fixed seeds replay the full stream.
"""

from __future__ import annotations

import pytest

from repro.engine import WalkEngine
from repro.errors import WalkError
from repro.graphs import complete_graph, random_regular_graph
from repro.markov import WalkSpectrum
from repro.serve import (
    REASON_QUEUE_FULL,
    REASON_SHARD_BUDGET,
    ServePolicy,
    TrafficSpec,
    WalkScheduler,
    run_closed_loop,
    run_open_loop,
    sample_request_args,
)
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit


def _drain_until_depleted(engine, graph, length=256, limit=200):
    """Issue pooled walks (no auto-maintain) until some shard is depleted."""
    manager = engine.pool_manager
    i = 0
    while not manager.depleted_shards():
        engine.walk(i % graph.n, length)
        i += 1
        assert i < limit, "stream never depleted any shard"


class TestSubmitAndAdmission:
    def test_rejected_requests_charge_zero_rounds(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=3, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        _drain_until_depleted(engine, torus_8x8)
        shard = engine.pool_manager.depleted_shards()[0]
        est = engine.pool_manager.estimate_refill_rounds([shard])
        assert est > 1
        rounds_before = engine.network.rounds
        ticket = sched.submit(shard, 256, deadline=1)  # source in the shard (mod map)
        assert ticket.status == "rejected"
        assert ticket.reject_reason == REASON_SHARD_BUDGET
        assert engine.network.rounds == rounds_before  # admission is free
        assert ticket.rounds == 0 and ticket.rounds_attributed == 0
        assert ticket.result is None
        stats = sched.stats()
        assert stats.rejected == 1
        assert stats.rejects_by_reason == {REASON_SHARD_BUDGET: 1}
        # The same request with budget >= the estimate is admitted.
        ok = sched.submit(shard, 256, deadline=est + 10_000)
        assert ok.status == "queued"

    def test_healthy_shard_admits_under_tight_budget(self, torus_8x8):
        # The rule is about *refillability*, not service cost: with every
        # shard at watermark there is nothing to refill, so even a 1-round
        # budget admits (and then misses its deadline, counted below).
        engine = WalkEngine(torus_8x8, seed=5, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        assert sched.submit(0, 256, deadline=1).status == "queued"

    def test_queue_full_rejects(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        sched = engine.scheduler(max_queue_depth=2)
        assert sched.submit(0, 64).status == "queued"
        assert sched.submit(1, 64).status == "queued"
        t3 = sched.submit(2, 64)
        assert t3.status == "rejected" and t3.reject_reason == REASON_QUEUE_FULL
        sched.drain()
        assert sched.submit(3, 64).status == "queued"  # space again

    def test_malformed_requests_raise(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        sched = engine.scheduler()
        with pytest.raises(WalkError, match="out of range"):
            sched.submit(torus_8x8.n + 3, 64)
        with pytest.raises(WalkError, match="length"):
            sched.submit(0, 0)
        with pytest.raises(WalkError, match="deadline"):
            sched.submit(0, 64, deadline=0)
        engine.prepare(length_hint=256)  # record_paths=False pool
        with pytest.raises(WalkError, match="record_paths"):
            sched.submit(0, 64, record_paths=True)

    def test_policy_validation(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1)
        with pytest.raises(WalkError, match="not both"):
            WalkScheduler(engine, policy=ServePolicy(), max_batch_requests=2)
        with pytest.raises(WalkError, match="max_batch_requests"):
            engine.scheduler(max_batch_requests=0)
        with pytest.raises(WalkError, match="max_queue_depth"):
            engine.scheduler(max_queue_depth=0)


class TestDeadlines:
    def test_deadline_miss_counted_not_dropped(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        # Healthy shards admit under any budget; servicing takes far more
        # than 2 rounds, so the deadline is structurally missed.
        ticket = sched.submit([0, 9], 256, deadline=2)
        sched.drain()
        assert ticket.status == "done"
        assert ticket.result is not None and len(ticket.result.destinations) == 2
        assert ticket.deadline_missed
        assert ticket.completed_round > ticket.deadline_round
        assert sched.stats().deadline_misses == 1

    def test_generous_deadline_is_met(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        ticket = sched.submit([0, 9], 256, deadline=500_000)
        sched.drain()
        assert ticket.status == "done" and not ticket.deadline_missed
        assert sched.stats().deadline_misses == 0

    def test_deadline_orders_the_queue(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler(max_batch_requests=1)
        relaxed = sched.submit(0, 256, deadline=900_000)
        urgent = sched.submit(9, 256, deadline=10_000)
        sched.drain()
        assert urgent.serviced_tick < relaxed.serviced_tick

    def test_priority_beats_fifo(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=7, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler(max_batch_requests=1)
        late_low = sched.submit(0, 256, priority=5)
        early_high = sched.submit(9, 256, priority=0)
        sched.drain()
        assert early_high.serviced_tick < late_low.serviced_tick


class TestNoStarvation:
    def test_hot_stream_cannot_starve_cold_requests(self, torus_8x8):
        # 10 hot-source submissions per cold one, tiny cohorts: every cold
        # ticket must complete, and no hot ticket submitted after a cold
        # one may be serviced before it (FIFO within a class).
        engine = WalkEngine(torus_8x8, seed=23, record_paths=False, num_shards=8)
        engine.prepare(length_hint=256)
        sched = engine.scheduler(max_batch_requests=2)
        cold, hot = [], []
        src = 1
        for i in range(44):
            if i % 11 == 0:
                src = (src + 7) % torus_8x8.n
                cold.append(sched.submit(src, 256))
            else:
                hot.append(sched.submit(0, 256))
        sched.drain()
        assert all(t.status == "done" for t in cold)
        for c in cold:
            for h in hot:
                if h.ticket_id > c.ticket_id:
                    assert h.serviced_tick >= c.serviced_tick
        # The shared pool survived the attack at watermark everywhere.
        manager = engine.pool_manager
        unused = manager.shard_unused()
        for shard in manager.shards:
            assert unused[shard.shard_id] >= shard.low_watermark


class TestLedgerBalance:
    def test_private_deltas_contain_only_report(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=11, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler(max_batch_requests=3)
        tickets = [sched.submit([(7 * i) % 64, (11 * i + 5) % 64], 256) for i in range(7)]
        sched.drain()
        for t in tickets:
            assert t.status == "done"
            assert set(t.result.phase_rounds) <= {"report"}, t.result.phase_rounds
            assert t.rounds == t.result.phase_rounds.get("report", 0)

    def test_attributed_rounds_balance_session_ledger(self, torus_8x8):
        # Requests + budgeted maintenance = session total, to the round:
        # shared cohort work is apportioned exactly, background sweeps are
        # the only other charge, and rejected requests contribute nothing.
        engine = WalkEngine(torus_8x8, seed=13, record_paths=False, auto_maintain=False)
        engine.prepare(length_hint=256)
        base = engine.network.rounds
        sched = engine.scheduler(max_batch_requests=2, maintain_round_budget=50)
        tickets = []
        for i in range(9):
            tickets.append(sched.submit([(5 * i) % 64], 256, deadline=1_000_000))
        sched.drain()
        for _ in range(3):
            sched.tick()  # idle ticks: maintenance only
        done = [t for t in tickets if t.status == "done"]
        assert len(done) == 9
        ledger = engine.network.ledger
        maintain_rounds = ledger.phase_rounds("pool-refill/maintain")
        attributed = sum(t.rounds_attributed for t in done)
        assert attributed + maintain_rounds == engine.network.rounds - base
        # Shared work really lives in the serve family (plus shared refills).
        assert ledger.phase_total("serve") > 0
        served_shared = sum(t.rounds_attributed - t.rounds for t in done)
        assert served_shared == ledger.phase_total("serve") + ledger.phase_rounds(
            "pool-refill/serve"
        )

    def test_report_opt_out_gives_zero_private_delta(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=11, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        t = sched.submit([0, 9], 256, report_to_source=False)
        sched.drain()
        assert t.status == "done" and t.rounds == 0
        assert t.rounds_attributed > 0  # still owes its cohort share

    def test_golden_one_shot_ledgers_untouched_by_serve_import(self, torus_8x8):
        # Importing/attaching the serving layer must not perturb the
        # one-shot path (the golden suite pins exact totals; this is the
        # cheap in-situ canary).
        from repro.walks import single_random_walk

        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.scheduler()
        res = single_random_walk(torus_8x8, 0, 256, seed=7)
        assert res.mode == "stitched" and res.rounds == 398  # golden value


class TestSchedulingAndResults:
    def test_cohort_merges_requests_and_mixed_lengths(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=17, record_paths=True)
        engine.prepare(lam=12, record_paths=True)
        sched = engine.scheduler(max_batch_requests=4)
        a = sched.submit([0, 9], 64, record_paths=True)
        b = sched.submit([17], 256, record_paths=True)
        c = sched.submit(33, 100, record_paths=True)
        rep = sched.tick()
        assert set(rep.serviced) == {a.ticket_id, b.ticket_id, c.ticket_id}
        for t, length in ((a, 64), (b, 256), (c, 100)):
            assert t.status == "done" and t.result.mode == "scheduled"
            for traj, dest, src in zip(
                t.result.positions, t.result.destinations, t.result.sources
            ):
                assert len(traj) == length + 1
                assert traj[0] == src and traj[-1] == dest
                for u, v in zip(traj[:-1], traj[1:]):
                    assert torus_8x8.has_edge(int(u), int(v))

    def test_cold_trajectory_request_survives_earlier_pathless_cohort(self, torus_8x8):
        # Regression: on a COLD engine the pool is installed by whichever
        # cohort runs first.  A trajectory request queued behind a cohort
        # of endpoint-only requests must still get its positions — the
        # scheduler remembers the wish and prepares the pool path-capable.
        engine = WalkEngine(torus_8x8, seed=41, record_paths=False)
        sched = engine.scheduler(max_batch_requests=2)
        sched.submit([0], 256)
        sched.submit([9], 256)
        traj = sched.submit([17], 256, record_paths=True)  # lands in cohort 2
        sched.drain()
        assert engine.pool is not None and engine.pool.record_paths
        assert traj.status == "done"
        assert traj.result.positions is not None
        (positions,) = traj.result.positions
        assert len(positions) == 257 and positions[-1] == traj.result.destinations[0]

    def test_pool_swap_under_queued_trajectory_request_raises(self, torus_8x8):
        # The engine owner re-prepares a pathless pool while a trajectory
        # ticket waits in the queue: servicing must fail loudly, not
        # silently return positions=None.
        engine = WalkEngine(torus_8x8, seed=43, record_paths=False)
        sched = engine.scheduler()
        ticket = sched.submit([0], 256, record_paths=True)  # cold engine: admitted
        engine.prepare(length_hint=256, record_paths=False)  # sabotage
        with pytest.raises(WalkError, match="re-prepared with record_paths=False"):
            sched.tick()
        assert ticket.status == "queued"  # not silently completed

    def test_rejected_trajectory_wish_does_not_tax_the_pool(self, torus_8x8):
        # A REJECTED cold-engine trajectory request must not force the
        # eventual auto-prepared pool to record paths for the session.
        engine = WalkEngine(torus_8x8, seed=43, record_paths=False)
        sched = engine.scheduler(max_queue_depth=1)
        sched.submit([0], 256)  # fills the queue
        rejected = sched.submit([9], 256, record_paths=True)
        assert rejected.status == "rejected"
        sched.drain()
        assert engine.pool is not None and not engine.pool.record_paths

    def test_naive_regime_without_pool(self, torus_8x8):
        # Short walks on a cold engine: the k-enlarged policy says naive,
        # no pool is installed, and the cohort completes as merged tails.
        engine = WalkEngine(torus_8x8, seed=19, record_paths=False)
        sched = engine.scheduler()
        t1 = sched.submit([0, 9, 21], 3)
        t2 = sched.submit([5], 2)
        sched.drain()
        assert engine.pool is None
        for t in (t1, t2):
            assert t.status == "done" and t.result.lam == 0
        assert len(t1.result.destinations) == 3

    def test_scheduler_auto_prepares_with_k_enlarged_lambda(self):
        g = random_regular_graph(400, 4, 3)
        engine = WalkEngine(g, seed=3, record_paths=False)
        sched = engine.scheduler(max_batch_requests=8)
        for i in range(8):
            sched.submit([(i * 11) % g.n, (i * 17 + 1) % g.n], 512)
        sched.drain()
        pool = engine.pool
        assert pool is not None and engine.stats().full_preparations == 1
        # λ came from the cohort-wide many_walks policy, not the
        # single-walk √(ℓD) one — it must exceed the single-walk choice.
        from repro.walks.params import many_walks_params, single_walk_params

        d_est = max(1, 2 * engine._tree_cache[sched.root].height)
        assert pool.lam == many_walks_params(16, 512, d_est, n=g.n).lam
        assert pool.lam > single_walk_params(512, d_est, n=g.n).lam

    def test_fixed_seed_replays_identically(self, torus_8x8):
        def stream(seed):
            engine = WalkEngine(torus_8x8, seed=seed, record_paths=False)
            sched = engine.scheduler(max_batch_requests=3)
            tickets = [
                sched.submit([(3 * i) % 64, (5 * i + 2) % 64], 256) for i in range(6)
            ]
            sched.drain()
            return [
                (tuple(t.result.destinations), t.rounds_attributed) for t in tickets
            ], engine.network.rounds

        a, ra = stream(29)
        b, rb = stream(29)
        assert a == b and ra == rb
        c, _ = stream(30)
        assert a != c

    def test_scheduled_endpoints_follow_exact_law(self):
        # 30 concurrently scheduled k=10 requests, pool + merged sweeps +
        # shared refills: endpoints must still follow P^l exactly.
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        engine = WalkEngine(g, seed=4321, record_paths=False)
        engine.prepare(lam=8)
        sched = engine.scheduler(max_batch_requests=8)
        tickets = [sched.submit([0] * 10, length) for _ in range(30)]
        sched.drain()
        endpoints = [d for t in tickets for d in t.result.destinations]
        assert len(endpoints) == 300
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_engine_stats_surface_serve_telemetry(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        assert engine.stats().serve is None
        sched = engine.scheduler()
        sched.submit([0, 9], 256)
        sched.drain()
        serve = engine.stats().serve
        assert serve is not None
        assert serve["submitted"] == 1 and serve["completed"] == 1
        assert serve["walks_served"] == 2
        assert serve["p99_rounds_per_request"] >= serve["p50_rounds_per_request"] > 0

    def test_idle_tick_is_cheap_and_safe(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1, record_paths=False)
        engine.prepare(length_hint=256)
        sched = engine.scheduler()
        before = engine.network.rounds
        rep = sched.tick()
        assert rep.serviced == () and engine.network.rounds == before


class TestWorkloads:
    def test_spec_validation(self):
        with pytest.raises(WalkError, match="hot_fraction"):
            TrafficSpec(n=10, hot_fraction=2.0)
        with pytest.raises(WalkError, match="at least one"):
            TrafficSpec(n=10, lengths=())
        with pytest.raises(WalkError, match="hot_source"):
            TrafficSpec(n=10, hot_source=99)

    def test_sample_request_args_respects_spec(self):
        spec = TrafficSpec(n=50, lengths=(64, 128), ks=(2, 4), hot_fraction=1.0, hot_source=7)
        rng = make_rng(3)
        for _ in range(20):
            args = sample_request_args(spec, rng)
            assert args["length"] in (64, 128)
            assert len(args["sources"]) in (2, 4)
            assert all(s == 7 for s in args["sources"])

    def test_open_loop_serves_all_arrivals(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=31, record_paths=False)
        sched = engine.scheduler(max_batch_requests=4)
        spec = TrafficSpec(n=torus_8x8.n, lengths=(256,), ks=(1, 2), hot_fraction=0.3)
        tickets = run_open_loop(sched, spec, make_rng(5), rate=2.0, ticks=6)
        assert tickets, "Poisson(2) over 6 ticks produced no arrivals?"
        assert all(t.status in ("done", "rejected") for t in tickets)
        assert sched.queue_depth == 0

    def test_closed_loop_completes_total(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=37, record_paths=False)
        sched = engine.scheduler(max_batch_requests=2)
        spec = TrafficSpec(n=torus_8x8.n, lengths=(256,), ks=(1,))
        tickets = run_closed_loop(sched, spec, make_rng(7), concurrency=3, total=10)
        assert len(tickets) == 10
        assert all(t.status == "done" for t in tickets)
