"""Tests for centralized graph properties vs. networkx ground truth."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_tree,
    connected_components,
    cycle_graph,
    diameter,
    eccentricity,
    grid_graph,
    is_bipartite,
    is_connected,
    path_graph,
    pseudo_diameter,
    shortest_path,
    star_graph,
)


class TestBfs:
    def test_distances_on_path(self):
        g = path_graph(6)
        assert list(bfs_distances(g, 0)) == [0, 1, 2, 3, 4, 5]

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 0)
        assert dist[2] == -1 and dist[3] == -1

    def test_tree_parents_consistent(self):
        g = grid_graph(4, 4)
        parent, dist = bfs_tree(g, 0)
        assert parent[0] == 0
        for v in range(1, g.n):
            assert dist[v] == dist[parent[v]] + 1
            assert g.has_edge(v, int(parent[v]))

    def test_tree_deterministic(self):
        g = grid_graph(3, 3)
        p1, _ = bfs_tree(g, 4)
        p2, _ = bfs_tree(g, 4)
        assert np.array_equal(p1, p2)


class TestDiameter:
    def test_cycle(self):
        assert diameter(cycle_graph(9)) == 4

    def test_star(self):
        assert diameter(star_graph(20)) == 2

    def test_eccentricity_center_vs_leaf(self):
        g = path_graph(9)
        assert eccentricity(g, 4) == 4
        assert eccentricity(g, 0) == 8

    def test_eccentricity_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            eccentricity(g, 0)

    def test_pseudo_diameter_bounds(self):
        for g in (cycle_graph(11), grid_graph(4, 5), star_graph(8)):
            pd = pseudo_diameter(g)
            d = diameter(g)
            assert d / 2 <= pd <= d

    def test_pseudo_diameter_exact_on_tree(self):
        g = path_graph(13)
        assert pseudo_diameter(g) == 12


class TestConnectivity:
    def test_connected(self):
        assert is_connected(cycle_graph(5))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(8))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(7))

    def test_self_loop_breaks_bipartiteness(self):
        assert not is_bipartite(Graph(3, [(0, 1), (1, 2), (2, 2)]))

    def test_grid_bipartite(self):
        assert is_bipartite(grid_graph(3, 4))


class TestShortestPath:
    def test_path_found(self):
        g = cycle_graph(10)
        p = shortest_path(g, 0, 4)
        assert p[0] == 0 and p[-1] == 4 and len(p) == 5

    def test_no_path_raises(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            shortest_path(g, 0, 3)


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(2, 14))
    base = [(i, i + 1) for i in range(n - 1)]
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=14))
    return n, base + extra


class TestAgainstNetworkx:
    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_bfs_distances_match(self, data):
        n, edges = data
        g = Graph(n, edges)
        h = nx.Graph(edges)
        h.add_nodes_from(range(n))
        lengths = nx.single_source_shortest_path_length(h, 0)
        mine = bfs_distances(g, 0)
        for v in range(n):
            assert mine[v] == lengths[v]

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_diameter_matches(self, data):
        n, edges = data
        g = Graph(n, edges)
        h = nx.Graph(edges)
        h.add_nodes_from(range(n))
        assert diameter(g) == nx.diameter(h)

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_bipartite_matches(self, data):
        n, edges = data
        if any(u == v for u, v in edges):
            return  # networkx bipartite check differs on self-loops
        g = Graph(n, edges)
        h = nx.Graph(edges)
        h.add_nodes_from(range(n))
        assert is_bipartite(g) == nx.is_bipartite(h)
