"""Tests for Phase 1 (perform_short_walks) — lengths, paths, congestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import cycle_graph, star_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import WalkStore, perform_short_walks, token_counts


class TestTokenCounts:
    def test_degree_proportional(self):
        degrees = np.array([1, 3, 4])
        counts = token_counts(degrees, 1.0, degree_proportional=True)
        assert list(counts) == [1, 3, 4]

    def test_fractional_eta_rounds_up(self):
        degrees = np.array([4, 4])
        counts = token_counts(degrees, 0.3, degree_proportional=True)
        assert list(counts) == [2, 2]  # ceil(1.2)

    def test_uniform_mode(self):
        degrees = np.array([1, 3, 4])
        counts = token_counts(degrees, 2.0, degree_proportional=False)
        assert list(counts) == [2, 2, 2]

    def test_bad_eta(self):
        with pytest.raises(WalkError):
            token_counts(np.array([1]), 0.0, degree_proportional=True)


class TestPhase1:
    def test_store_receives_all_tokens(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        counts = token_counts(g.degrees, 1.0, degree_proportional=True)
        perform_short_walks(net, store, 5, make_rng(1), counts=counts)
        assert store.tokens_created == int(counts.sum()) == 2 * g.m

    def test_lengths_in_range(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 6
        perform_short_walks(
            net, store, lam, make_rng(2), counts=np.ones(g.n, dtype=np.int64) * 4
        )
        lengths = [rec.length for rec in store.iter_all()]
        assert min(lengths) >= lam and max(lengths) <= 2 * lam - 1

    def test_lengths_uniform_chi_square(self):
        g = cycle_graph(8)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 5
        perform_short_walks(
            net, store, lam, make_rng(3), counts=np.full(g.n, 500, dtype=np.int64)
        )
        lengths = [rec.length for rec in store.iter_all()]
        observed = {t: lengths.count(t) for t in range(lam, 2 * lam)}
        expected = {t: 1.0 / lam for t in range(lam, 2 * lam)}
        result = chi_square_goodness_of_fit(observed, expected)
        assert not result.rejects_at(1e-4)

    def test_fixed_length_mode(self):
        g = cycle_graph(8)
        net = Network(g, seed=0)
        store = WalkStore()
        perform_short_walks(
            net,
            store,
            7,
            make_rng(4),
            counts=np.ones(g.n, dtype=np.int64),
            randomized_lengths=False,
        )
        assert all(rec.length == 7 for rec in store.iter_all())

    def test_paths_are_genuine_walks(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        store = WalkStore()
        perform_short_walks(
            net, store, 6, make_rng(5), counts=np.ones(g.n, dtype=np.int64) * 2
        )
        for rec in store.iter_all():
            assert rec.path is not None
            assert rec.path[0] == rec.source
            assert rec.path[-1] == rec.destination
            for a, b in zip(rec.path[:-1], rec.path[1:]):
                assert g.has_edge(int(a), int(b))

    def test_no_paths_when_disabled(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        perform_short_walks(
            net,
            store,
            4,
            make_rng(6),
            counts=np.ones(g.n, dtype=np.int64),
            record_paths=False,
        )
        assert all(rec.path is None for rec in store.iter_all())

    def test_rounds_at_least_max_length(self):
        # Each iteration is >= 1 round, and there are max-length iterations.
        g = cycle_graph(12)
        net = Network(g, seed=0)
        store = WalkStore()
        lam = 8
        perform_short_walks(
            net, store, lam, make_rng(7), counts=np.ones(g.n, dtype=np.int64)
        )
        max_len = max(rec.length for rec in store.iter_all())
        assert net.ledger.phase_rounds("phase1") >= max_len

    def test_congestion_increases_rounds(self):
        # Many tokens from a single hub node must serialize on its edges.
        g = star_graph(5)
        net = Network(g, seed=0)
        store = WalkStore()
        counts = np.zeros(g.n, dtype=np.int64)
        counts[0] = 40  # hub launches 40 tokens over 4 edges
        perform_short_walks(net, store, 2, make_rng(8), counts=counts)
        # First iteration alone needs >= 40/4 = 10 rounds.
        assert net.ledger.phase_rounds("phase1") >= 10

    def test_destination_law_matches_markov(self):
        # Fixed-length tokens from one node must land per the exact P^t law.
        g = torus_graph(4, 4)
        t = 4
        spec = WalkSpectrum(g)
        expected_dist = spec.distribution(0, t)
        net = Network(g, seed=0)
        store = WalkStore()
        counts = np.zeros(g.n, dtype=np.int64)
        counts[0] = 4000
        perform_short_walks(
            net, store, t, make_rng(9), counts=counts, randomized_lengths=False
        )
        landed = [rec.destination for rec in store.iter_all()]
        observed = {v: landed.count(v) for v in set(landed)}
        expected = {v: float(expected_dist[v]) for v in range(g.n) if expected_dist[v] > 1e-12}
        result = chi_square_goodness_of_fit(observed, expected)
        assert not result.rejects_at(1e-4)

    def test_zero_counts_is_noop(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        rounds = perform_short_walks(
            net, store, 4, make_rng(10), counts=np.zeros(g.n, dtype=np.int64)
        )
        assert rounds == 0 and store.tokens_created == 0

    def test_input_validation(self):
        g = cycle_graph(6)
        net = Network(g, seed=0)
        store = WalkStore()
        with pytest.raises(WalkError):
            perform_short_walks(net, store, 0, make_rng(0), counts=np.ones(g.n, dtype=np.int64))
        with pytest.raises(WalkError):
            perform_short_walks(net, store, 3, make_rng(0), counts=np.ones(3, dtype=np.int64))
        with pytest.raises(WalkError):
            perform_short_walks(net, store, 3, make_rng(0), counts=-np.ones(g.n, dtype=np.int64))
