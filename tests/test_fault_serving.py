"""Crash-fault-tolerant serving: engine recovery + scheduler degradation.

The PR-6 robustness surface.  A :class:`~repro.congest.faults.FaultSchedule`
attached to a :class:`~repro.engine.core.WalkEngine` fires crash/recover
node events as the session's round counter passes them; the engine evicts
dead pooled state, recovers in-flight walks from their last live prefix,
and bills every recovery round to the ``"serve/recovery"`` ledger phase.
The scheduler parks tickets whose sources are down (retried, never
dropped), waits out crashes with charged exponential backoff, and steers
maintenance around stalled shards.

Invariants under test:

* **Exactness** — post-recovery endpoints follow ``P^ℓ`` on the live
  graph (chi-square), because every step sampled from a node whose
  neighborhood changed is truncated and resampled at recovery time.
* **Accounting** — Σ per-ticket attributed rounds + maintain + churn +
  recovery phases equals the session's ledger delta exactly.
* **Degradation** — every admitted ticket completes; deadline misses are
  counted, requests are never dropped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest.faults import FaultSchedule, FaultStep
from repro.engine import WalkEngine
from repro.engine.faults import RECOVERY_PHASE
from repro.errors import WalkError
from repro.graphs.graph import Graph
from repro.graphs import cycle_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit


def _drain_with_faults(engine, scheduler, sources, length, *, deadline=1_000_000):
    tickets = [scheduler.submit([s], length, deadline=deadline) for s in sources]
    scheduler.drain()
    return tickets


class TestApplyFaults:
    def test_crash_then_recover_restores_topology(self):
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=3, record_paths=True, auto_maintain=False)
        engine.prepare(lam=4)
        victim = 7
        saved_neighbors = set(engine.graph.neighbor_set(victim))
        rep = engine.apply_faults(FaultStep(at_round=0, crash=(victim,)))
        assert engine.graph.degree(victim) == 0
        assert rep.crashed == (victim,)
        assert rep.edges_deleted == len(saved_neighbors)
        assert rep.tokens_evicted >= rep.tokens_lost_at_crashed > 0
        rep2 = engine.apply_faults(FaultStep(at_round=0, recover=(victim,)))
        assert rep2.recovered == (victim,)
        assert rep2.edges_restored == len(saved_neighbors)
        assert set(engine.graph.neighbor_set(victim)) == saved_neighbors

    def test_recovery_restores_weights(self):
        # A weighted star: crash the leaf, recover it, weights must come
        # back exactly (not reset to 1.0).
        g = Graph(4, [(0, 1), (0, 2), (0, 3)], weights=[2.5, 1.0, 7.0], name="wstar")
        engine = WalkEngine(g, seed=1, record_paths=True, auto_maintain=False)
        engine.prepare(lam=2)
        before = {
            tuple(sorted(e)): w
            for e, w in zip(engine.graph.edge_array.tolist(), engine.graph.edge_weights())
        }
        engine.apply_faults(FaultStep(at_round=0, crash=(3,)))
        engine.apply_faults(FaultStep(at_round=0, recover=(3,)))
        after = {
            tuple(sorted(e)): w
            for e, w in zip(engine.graph.edge_array.tolist(), engine.graph.edge_weights())
        }
        assert after == before

    def test_overlapping_crashes_owed_edge_transfer(self):
        # Crash u, then its neighbor v, then recover u while v is still
        # down: the u–v edge must stay out (owed to v) and return only at
        # v's recovery — no edge lost, no edge duplicated.
        g = cycle_graph(8)
        engine = WalkEngine(g, seed=2, record_paths=True, auto_maintain=False)
        engine.prepare(lam=2)
        m0 = engine.graph.m
        engine.apply_faults(FaultStep(at_round=0, crash=(2,)))
        engine.apply_faults(FaultStep(at_round=0, crash=(3,)))
        engine.apply_faults(FaultStep(at_round=0, recover=(2,)))
        assert not engine.graph.has_edge(2, 3)  # owed to 3, still down
        assert engine.graph.has_edge(1, 2)
        engine.apply_faults(FaultStep(at_round=0, recover=(3,)))
        assert engine.graph.has_edge(2, 3)
        assert engine.graph.has_edge(3, 4)
        assert engine.graph.m == m0

    def test_simultaneous_crash_and_recover_pair(self):
        # Two adjacent nodes crash in one step and recover in one step;
        # their shared edge must be claimed exactly once and restored
        # exactly once.
        g = cycle_graph(10)
        engine = WalkEngine(g, seed=4, record_paths=True, auto_maintain=False)
        engine.prepare(lam=2)
        m0 = engine.graph.m
        engine.apply_faults(FaultStep(at_round=0, crash=(4, 5)))
        assert engine.graph.degree(4) == 0 and engine.graph.degree(5) == 0
        engine.apply_faults(FaultStep(at_round=0, recover=(4, 5)))
        assert engine.graph.has_edge(4, 5)
        assert engine.graph.m == m0

    def test_recovery_charged_to_recovery_phase(self):
        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=5, record_paths=True, auto_maintain=False)
        engine.prepare(lam=4)
        before = engine.network.ledger.phase_rounds(RECOVERY_PHASE)
        rep = engine.apply_faults(FaultStep(at_round=0, crash=(11,)))
        after = engine.network.ledger.phase_rounds(RECOVERY_PHASE)
        assert rep.rounds > 0
        assert after - before == rep.rounds
        assert engine.stats().fault_recovery_rounds == after

    def test_recover_of_live_node_is_noop(self):
        # The ad-hoc injection path is idempotent (replays must be safe):
        # recovering a node that never crashed does nothing.
        g = cycle_graph(6)
        engine = WalkEngine(g, seed=6, record_paths=True, auto_maintain=False)
        m0 = engine.graph.m
        rep = engine.apply_faults(FaultStep(at_round=0, recover=(2,)))
        assert rep.recovered == ()
        assert rep.edges_restored == 0
        assert engine.graph.m == m0


class TestFaultServing:
    def _engine_and_scheduler(self, g, *, seed=31, batch=2, budget=40):
        engine = WalkEngine(g, seed=seed, record_paths=True, auto_maintain=False)
        engine.prepare(lam=5)
        scheduler = engine.scheduler(
            max_batch_requests=batch, maintain_round_budget=budget
        )
        return engine, scheduler

    def test_drain_completes_every_ticket_under_crashes(self):
        # The acceptance scenario: a seeded crash/recover schedule over an
        # 8-request drain — zero drops, every ticket DONE with a result.
        g = torus_graph(8, 8)
        engine, scheduler = self._engine_and_scheduler(g)
        base = engine.network.rounds
        schedule = FaultSchedule.sample(
            g,
            crashes=4,
            start_round=base + 100,
            end_round=base + 4_000,
            recover_after=400,
            seed=99,
        )
        engine.attach_faults(schedule)
        tickets = _drain_with_faults(engine, scheduler, [(9 * i) % 64 for i in range(8)], 128)
        stats = scheduler.stats()
        assert stats.crashes_seen > 0
        assert all(t.status == "done" and t.result is not None for t in tickets)
        assert stats.completed == len(tickets)

    def test_extended_ledger_identity_exact(self):
        # Σ attributed + maintain + churn + recovery == session delta,
        # to the round, across a crash/recovery episode.
        g = torus_graph(8, 8)
        engine, scheduler = self._engine_and_scheduler(g)
        base = engine.network.rounds
        engine.attach_faults(
            FaultSchedule.sample(
                g,
                crashes=4,
                start_round=base + 100,
                end_round=base + 4_000,
                recover_after=400,
                seed=99,
            )
        )
        snap = engine.network.ledger.capture()
        tickets = _drain_with_faults(engine, scheduler, [(9 * i) % 64 for i in range(8)], 128)
        delta = engine.network.ledger.delta_since(snap)
        attributed = sum(t.rounds_attributed for t in tickets)
        maintain = delta.phase_rounds.get("pool-refill/maintain", 0)
        churn = delta.phase_rounds.get("pool-refill/churn", 0)
        recovery = delta.phase_rounds.get(RECOVERY_PHASE, 0)
        assert recovery > 0
        assert attributed + maintain + churn + recovery == delta.rounds
        assert scheduler.stats().recovery_rounds == engine.network.ledger.phase_rounds(
            RECOVERY_PHASE
        )

    def test_crashed_source_parked_and_retried(self):
        # A ticket whose source is down when it reaches the head of the
        # queue is parked (retries += 1) and serviced after the scheduled
        # recovery — never dropped.
        g = torus_graph(6, 6)
        engine, scheduler = self._engine_and_scheduler(g, batch=1)
        base = engine.network.rounds
        victim = 14
        engine.attach_faults(
            FaultSchedule(
                steps=(
                    FaultStep(at_round=base, crash=(victim,)),
                    FaultStep(at_round=base + 600, recover=(victim,)),
                )
            )
        )
        t_crashed = scheduler.submit([victim], 64, deadline=1_000_000)
        t_live = scheduler.submit([0], 64, deadline=1_000_000)
        scheduler.drain()
        assert t_crashed.status == "done" and t_crashed.result is not None
        assert t_live.status == "done"
        assert t_crashed.retries >= 1
        stats = scheduler.stats()
        assert stats.ticket_retries >= 1
        assert stats.completed == 2

    def test_permanent_crash_stop_fails_loudly(self):
        # Crash-stop with no scheduled recovery: serving the dead source
        # must raise, not spin forever.
        g = torus_graph(6, 6)
        engine, scheduler = self._engine_and_scheduler(g, batch=1)
        base = engine.network.rounds
        victim = 14
        engine.attach_faults(
            FaultSchedule(steps=(FaultStep(at_round=base, crash=(victim,)),))
        )
        scheduler.submit([victim], 64, deadline=1_000_000)
        with pytest.raises(WalkError, match="no scheduled recovery"):
            scheduler.drain()

    def test_endpoint_law_exact_through_crash_recovery(self):
        # The §5 exactness claim, end to end: a node crashes and recovers
        # mid-cohort, every step sampled from its mutated neighborhood is
        # truncated and resampled, and the served endpoints still follow
        # P^ℓ on the (restored) graph.
        g = cycle_graph(9)
        engine = WalkEngine(g, seed=5, record_paths=True, auto_maintain=False)
        engine.prepare(lam=4)
        base = engine.network.rounds
        engine.attach_faults(
            FaultSchedule(
                steps=(
                    FaultStep(at_round=base + 20, crash=(4,)),
                    FaultStep(at_round=base + 120, recover=(4,)),
                )
            )
        )
        scheduler = engine.scheduler(max_batch_requests=400, max_queue_depth=500)
        total = 360
        length = 16
        tickets = [scheduler.submit([0], length) for _ in range(total)]
        scheduler.drain()
        stats = scheduler.stats()
        # The episode must actually have hit the cohort, else the test
        # tests nothing.
        assert stats.crashes_seen == 1 and stats.recoveries_seen == 1
        assert stats.walks_recovered + stats.walks_restarted > 0
        endpoints = [int(t.result.destinations[0]) for t in tickets]
        dist = WalkSpectrum(g).distribution(0, length)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_run_fault_loop_completes_and_recovers(self):
        from repro.serve import TrafficSpec, run_fault_loop

        g = torus_graph(6, 6)
        engine = WalkEngine(g, seed=8, record_paths=False, auto_maintain=False)
        scheduler = engine.scheduler(max_batch_requests=4, maintain_round_budget=64)
        spec = TrafficSpec(n=g.n, lengths=(64,), ks=(2,))
        tickets = run_fault_loop(
            scheduler,
            spec,
            np.random.default_rng(12),
            crash_rate=0.05,
            recover_after=300,
            ticks=8,
            rate=1.0,
            fault_seed=21,
        )
        stats = scheduler.stats()
        assert stats.crashes_seen > 0
        assert all(t.status == "done" for t in tickets if t.reject_reason is None)
        assert stats.completed == sum(1 for t in tickets if t.reject_reason is None)

    def test_golden_one_shot_ledger_unchanged(self):
        # The fault machinery must be invisible when no schedule is
        # attached: the PR-2 golden one-shot walk cost is bit-identical.
        from repro.walks import single_random_walk

        res = single_random_walk(torus_graph(8, 8), 0, 256, seed=7)
        assert res.mode == "stitched" and res.rounds == 398
