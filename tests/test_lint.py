"""Lint gate inside tier-1.

Two layers:

* ``ruff check`` with the repo's ``ruff.toml`` — runs when ruff is
  installed (skipped otherwise, so offline/minimal environments still pass
  the gate);
* a dependency-free AST dead-import check that always runs: every name
  bound by a top-level import must be referenced somewhere outside the
  import statement itself (package ``__init__`` re-export modules are
  exempt — their imports exist to populate ``__all__``).
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "examples")


def _iter_py_files():
    for d in CHECKED_DIRS:
        yield from sorted((REPO_ROOT / d).rglob("*.py"))


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        ["ruff", "check", *CHECKED_DIRS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff check failed:\n{proc.stdout}\n{proc.stderr}"


def _unused_imports(path: Path) -> list[str]:
    src = path.read_text()
    tree = ast.parse(src)
    lines = src.splitlines()
    import_spans: list[tuple[int, int]] = []
    bound: list[tuple[str, int]] = []  # (name, first import line)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            import_spans.append((node.lineno, node.end_lineno or node.lineno))
            for alias in node.names:
                bound.append((alias.asname or alias.name.split(".")[0], node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            import_spans.append((node.lineno, node.end_lineno or node.lineno))
            for alias in node.names:
                if alias.name != "*":
                    bound.append((alias.asname or alias.name, node.lineno))

    def inside_import(lineno: int) -> bool:
        return any(lo <= lineno <= hi for lo, hi in import_spans)

    unused = []
    for name, lineno in bound:
        pattern = re.compile(r"\b" + re.escape(name) + r"\b")
        used = any(
            pattern.search(line)
            for i, line in enumerate(lines, 1)
            if not inside_import(i)
        )
        if not used:
            unused.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: unused import {name!r}")
    return unused


def test_no_dead_top_level_imports():
    problems: list[str] = []
    for path in _iter_py_files():
        if path.name == "__init__.py":
            continue  # re-export modules: imports exist to populate __all__
        problems.extend(_unused_imports(path))
    assert not problems, "dead imports found:\n" + "\n".join(problems)
