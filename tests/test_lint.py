"""Lint gate inside tier-1.

Two layers:

* ``ruff check`` with the repo's ``ruff.toml`` — runs when ruff is
  installed (skipped otherwise, so offline/minimal environments still pass
  the gate);
* the dependency-free AST dead-import check that always runs — the walk
  itself lives in :mod:`repro.analysis` (``DeadImportRule``) since PR 8;
  this test just points it at every checked directory.  Every name bound
  by a top-level import must be referenced somewhere outside the import
  statement itself (package ``__init__`` re-export modules are exempt —
  their imports exist to populate ``__all__``).

The deeper invariant rules (phase registry, bulk-only token paths, seeded
RNG, fast-path pairing, capture balance) run in
``tests/test_static_analysis.py`` over ``src`` only.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.analysis import DeadImportRule, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "examples")


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        ["ruff", "check", *CHECKED_DIRS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff check failed:\n{proc.stdout}\n{proc.stderr}"


def test_no_dead_top_level_imports():
    report = analyze_paths(
        [REPO_ROOT / d for d in CHECKED_DIRS], [DeadImportRule()], root=REPO_ROOT
    )
    assert not report.parse_errors, "unparseable files:\n" + "\n".join(
        f.format(REPO_ROOT) for f in report.parse_errors
    )
    problems = [f.format(REPO_ROOT) for f in report.findings]
    assert not problems, "dead imports found:\n" + "\n".join(problems)
