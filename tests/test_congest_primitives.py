"""Tests for BFS/convergecast/broadcast primitives.

The key guarantees: (a) the distributed BFS tree matches centralized BFS
distances and completes in ecc(root) rounds; (b) the charged fast paths
agree with the event-driven protocol versions in both result and cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    BroadcastProtocol,
    ConvergecastProtocol,
    Network,
    build_bfs_tree,
    charged_broadcast,
    charged_convergecast,
)
from repro.errors import ProtocolError
from repro.graphs import (
    Graph,
    bfs_distances,
    cycle_graph,
    eccentricity,
    grid_graph,
    path_graph,
    star_graph,
    torus_graph,
)


class TestBfsFlood:
    @pytest.mark.parametrize("factory,root", [
        (lambda: path_graph(9), 0),
        (lambda: path_graph(9), 4),
        (lambda: cycle_graph(10), 3),
        (lambda: grid_graph(4, 5), 7),
        (lambda: star_graph(8), 0),
        (lambda: star_graph(8), 3),
    ])
    def test_depths_match_centralized_bfs(self, factory, root):
        g = factory()
        net = Network(g)
        tree = build_bfs_tree(net, root)
        expected = bfs_distances(g, root)
        assert np.array_equal(np.array(tree.depth), expected)

    def test_rounds_equal_eccentricity(self):
        g = grid_graph(5, 5)
        net = Network(g)
        before = net.rounds
        tree = build_bfs_tree(net, 0)
        ecc = eccentricity(g, 0)
        # The deepest nodes cannot know they are last and still forward one
        # wave of redundant explores, so the flood may take one extra round.
        assert ecc <= net.rounds - before <= ecc + 1
        assert tree.height == ecc

    def test_parent_edges_exist(self):
        g = torus_graph(4, 4)
        net = Network(g)
        tree = build_bfs_tree(net, 5)
        for v in range(g.n):
            if v != 5:
                assert g.has_edge(v, tree.parent[v])
                assert tree.depth[v] == tree.depth[tree.parent[v]] + 1

    def test_children_are_inverse_of_parent(self):
        g = grid_graph(3, 4)
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        for v in range(g.n):
            for c in tree.children[v]:
                assert tree.parent[c] == v

    def test_path_to_root(self):
        g = path_graph(6)
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        assert tree.path_to_root(5) == [5, 4, 3, 2, 1, 0]

    def test_disconnected_raises(self):
        g = Graph(4, [(0, 1), (2, 3)])
        net = Network(g)
        with pytest.raises(ProtocolError):
            build_bfs_tree(net, 0)

    def test_cache_charges_identical_cost(self):
        g = grid_graph(4, 4)
        cache: dict = {}
        net = Network(g)
        build_bfs_tree(net, 0, cache=cache)
        first_rounds = net.rounds
        first_messages = net.messages_sent
        build_bfs_tree(net, 0, cache=cache)
        assert net.rounds == 2 * first_rounds
        assert net.messages_sent == 2 * first_messages

    def test_cache_returns_same_tree(self):
        g = grid_graph(4, 4)
        cache: dict = {}
        net = Network(g)
        t1 = build_bfs_tree(net, 0, cache=cache)
        t2 = build_bfs_tree(net, 0, cache=cache)
        assert t1 is t2


class TestConvergecast:
    def _sum_convergecast(self, g, root, values):
        net = Network(g)
        tree = build_bfs_tree(net, root)
        proto = ConvergecastProtocol(tree, list(values), lambda a, b: a + b)
        rounds = net.run(proto)
        return proto.result, rounds, tree

    def test_sum_over_grid(self):
        g = grid_graph(4, 4)
        values = list(range(g.n))
        result, rounds, tree = self._sum_convergecast(g, 0, values)
        assert result == sum(values)
        assert rounds == tree.height

    def test_max_over_star(self):
        g = star_graph(9)
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        proto = ConvergecastProtocol(tree, list(range(9)), max)
        net.run(proto)
        assert proto.result == 8

    def test_charged_matches_protocol_result_and_rounds(self):
        g = grid_graph(4, 5)
        values = [v * v for v in range(g.n)]

        net_proto = Network(g)
        tree_p = build_bfs_tree(net_proto, 3)
        proto = ConvergecastProtocol(tree_p, list(values), lambda a, b: a + b)
        proto_rounds = net_proto.run(proto)

        net_fast = Network(g)
        tree_f = build_bfs_tree(net_fast, 3)
        before = net_fast.rounds
        fast_result = charged_convergecast(net_fast, tree_f, list(values), lambda a, b: a + b)
        fast_rounds = net_fast.rounds - before

        assert fast_result == proto.result
        assert fast_rounds == proto_rounds

    def test_participants_reduce_messages(self):
        g = path_graph(8)
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        before = net.messages_sent
        charged_convergecast(
            net, tree, [0] * 8, lambda a, b: a + b, participants={1}
        )
        # Only node 1 and no others carry information: 1 message up.
        assert net.messages_sent - before == 1

    def test_single_node_graph(self):
        g = Graph(1, [])
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        proto = ConvergecastProtocol(tree, [42], lambda a, b: a + b)
        net.run(proto)
        assert proto.result == 42

    def test_word_cap_enforced(self):
        g = path_graph(4)
        net = Network(g, max_words=2)
        tree = build_bfs_tree(net, 0)
        with pytest.raises(ProtocolError):
            charged_convergecast(net, tree, [0] * 4, lambda a, b: a + b, words=3)


class TestBroadcast:
    def test_reaches_everyone_in_height_rounds(self):
        g = grid_graph(4, 4)
        net = Network(g)
        tree = build_bfs_tree(net, 0)
        proto = BroadcastProtocol(tree, "payload")
        rounds = net.run(proto)
        assert proto.received == set(range(g.n))
        assert rounds == tree.height

    def test_charged_matches_protocol_cost(self):
        g = torus_graph(4, 4)

        net_p = Network(g)
        tree_p = build_bfs_tree(net_p, 0)
        rounds_p = net_p.run(BroadcastProtocol(tree_p, "x"))
        messages_p = net_p.messages_sent - tree_p.build_messages

        net_f = Network(g)
        tree_f = build_bfs_tree(net_f, 0)
        before_r, before_m = net_f.rounds, net_f.messages_sent
        charged_broadcast(net_f, tree_f)
        assert net_f.rounds - before_r == rounds_p
        assert net_f.messages_sent - before_m == messages_p

    def test_word_cap(self):
        g = path_graph(3)
        net = Network(g, max_words=1)
        tree = build_bfs_tree(net, 0)
        with pytest.raises(ProtocolError):
            charged_broadcast(net, tree, words=4)


class TestBfsFastPathEquivalence:
    """The charged vectorized BFS must be indistinguishable — tree and
    ledger — from a message-by-message :class:`BfsFloodProtocol` run."""

    ZOO = [
        ("path9", lambda: path_graph(9), [0, 4, 8]),
        ("cycle10", lambda: cycle_graph(10), [0, 3]),
        ("grid4x5", lambda: grid_graph(4, 5), [0, 7, 19]),
        ("star8", lambda: star_graph(8), [0, 3]),
        ("torus4x4", lambda: torus_graph(4, 4), [5]),
        (
            "multigraph",
            lambda: Graph(5, [(0, 1), (0, 1), (1, 2), (2, 2), (2, 3), (3, 4), (0, 4), (4, 4), (1, 3)]),
            [0, 2, 4],
        ),
        (
            "loops-and-parallel",
            lambda: Graph(3, [(0, 0), (0, 1), (0, 1), (1, 2), (2, 2), (2, 0)]),
            [0, 1, 2],
        ),
        ("single-node", lambda: Graph(1, []), [0]),
        ("single-edge", lambda: Graph(2, [(0, 1)]), [0, 1]),
    ]

    @pytest.mark.parametrize(
        "factory,root",
        [(factory, root) for _name, factory, roots in ZOO for root in roots],
        ids=[f"{name}-r{root}" for name, _f, roots in ZOO for root in roots],
    )
    def test_tree_and_ledger_identical(self, factory, root):
        g = factory()

        net_p = Network(g)
        tree_p = build_bfs_tree(net_p, root, use_protocol=True)

        net_f = Network(g)
        tree_f = build_bfs_tree(net_f, root)

        # Identical BfsTree: parent ties broken lowest-ID, same depths,
        # same children ordering.
        assert tree_f.parent == tree_p.parent
        assert tree_f.depth == tree_p.depth
        assert tree_f.children == tree_p.children
        assert tree_f.root == tree_p.root

        # Identical ledger charges.
        assert net_f.rounds == net_p.rounds
        assert net_f.messages_sent == net_p.messages_sent
        assert net_f.ledger.max_congestion == net_p.ledger.max_congestion
        assert tree_f.build_rounds == tree_p.build_rounds
        assert tree_f.build_messages == tree_p.build_messages

    def test_fast_path_disconnected_raises_like_protocol(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ProtocolError):
            build_bfs_tree(Network(g), 0)
        with pytest.raises(ProtocolError):
            build_bfs_tree(Network(g), 0, use_protocol=True)

    def test_fast_path_populates_cache_with_exact_cost(self):
        g = grid_graph(4, 4)
        cache: dict = {}
        net = Network(g)
        build_bfs_tree(net, 0, cache=cache)
        first_rounds, first_messages = net.rounds, net.messages_sent
        build_bfs_tree(net, 0, cache=cache)
        assert net.rounds == 2 * first_rounds
        assert net.messages_sent == 2 * first_messages

    def test_downstream_sweeps_agree_across_paths(self):
        """A convergecast over the fast-path tree costs the same as over
        the protocol-built tree (the trees are identical objects)."""
        g = torus_graph(4, 4)
        values = [v * 2 for v in range(g.n)]

        net_p = Network(g)
        tree_p = build_bfs_tree(net_p, 3, use_protocol=True)
        res_p = charged_convergecast(net_p, tree_p, list(values), lambda a, b: a + b)

        net_f = Network(g)
        tree_f = build_bfs_tree(net_f, 3)
        res_f = charged_convergecast(net_f, tree_f, list(values), lambda a, b: a + b)

        assert res_f == res_p
        assert net_f.rounds == net_p.rounds
        assert net_f.messages_sent == net_p.messages_sent
