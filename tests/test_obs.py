"""The passive-observer contract of :mod:`repro.obs` (PR 9).

Four pillars:

* **passivity** — attaching a tracer + metrics registry changes *nothing*
  simulated: golden one-shot ledgers stay bit-identical, a full
  multi-tenant serve session lands on the identical round count and
  destinations, and scheduled endpoints still follow ``P^ℓ`` exactly;
* **balance** — the trace is the ledger laid out on a timeline: through
  maintenance, churn, and a crash/recover episode,
  Σ phase-span ``self_rounds`` + unattributed == ledger rounds since
  attach (globally AND per phase name), and the per-tenant attribution
  stamped into the trace sums exactly to the scheduler's own split;
* **determinism** — a fixed seed reproduces the trace, the Chrome JSON,
  and the Prometheus text byte-for-byte;
* **export formats** — Chrome trace-event JSON is schema-valid, the
  Prometheus exposition parses (cumulative histograms included), and
  ``python -m repro trace-report`` summarizes either export.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro import WalkEngine, random_regular_graph
from repro.cli import main as cli_main
from repro.congest import Network
from repro.congest.faults import FaultSchedule, FaultStep
from repro.dynamic import sample_churn_delta
from repro.markov import WalkSpectrum
from repro.graphs import complete_graph, torus_graph
from repro.obs import MetricsRegistry, Probe, Tracer, load_spans, summarize
from repro.serve import TenantRegistry, TrafficSpec, run_tenant_loop
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import single_random_walk

from test_ledger_golden import GOLDEN_SINGLE, SINGLE_CASES, _snapshot

N = 600


def observed_golden_run(name: str):
    """One golden single-walk case with a live tracer+metrics observer."""
    factory, source, length, seed, kwargs = SINGLE_CASES[name]
    graph = factory()
    net = Network(graph, seed=0)
    tracer, metrics = Tracer(), MetricsRegistry()
    probe = Probe(tracer=tracer, metrics=metrics)
    net.ledger.observer = probe
    probe.attached(net.ledger)
    result = single_random_walk(graph, source, length, seed=seed, network=net, **kwargs)
    return net, result, tracer, metrics


def run_session(*, tracer=None, metrics=None, heatmap=None, slo=None):
    """Multi-tenant serve through churn + a crash/recover episode.

    Mirrors ``examples/multi_tenant.py`` at test scale; returns
    ``(engine, sched, warmup_snapshot)``.
    """
    graph = random_regular_graph(N, 4, 7)
    engine = WalkEngine(graph, seed=7, record_paths=False, auto_maintain=False)
    if any(sink is not None for sink in (tracer, metrics, heatmap, slo)):
        engine.attach_observability(
            tracer=tracer, metrics=metrics, heatmap=heatmap, slo=slo
        )
    engine.prepare(length_hint=256)
    snap = engine.network.ledger.capture()
    registry = TenantRegistry()
    registry.register("free", weight=1.0)
    registry.register("pro", weight=4.0)
    registry.register("batch", weight=2.0, quota=120)
    sched = engine.scheduler(
        tenants=registry,
        max_batch_walks=48,
        pipelined_report=True,
        maintain_round_budget=128,
        max_queue_depth=4096,
    )
    rng = np.random.default_rng(11)
    specs = [
        TrafficSpec(n=N, lengths=(128, 256), ks=(2, 4), tenant=name)
        for name in registry.order
    ]
    run_tenant_loop(sched, specs, rng, rate=2.0, ticks=6, drain=False)
    engine.apply_churn(sample_churn_delta(engine.graph, rng, deletes=4, inserts=4))
    base = engine.network.rounds
    victim = 0
    engine.attach_faults(
        FaultSchedule(
            steps=(
                FaultStep(at_round=base, crash=(victim,)),
                FaultStep(at_round=base + 2_000, recover=(victim,)),
            )
        )
    )
    for name in registry.order:
        sched.submit([victim] * 2, 128, tenant=name, priority=-1)
    run_tenant_loop(sched, specs, rng, rate=1.0, ticks=4, drain=True)
    return engine, sched, snap


@pytest.fixture(scope="module")
def traced_session():
    tracer, metrics = Tracer(), MetricsRegistry()
    engine, sched, snap = run_session(tracer=tracer, metrics=metrics)
    return engine, sched, snap, tracer, metrics


# ----------------------------------------------------------------------
# Passivity: the observer changes nothing simulated
# ----------------------------------------------------------------------
class TestPassivity:
    @pytest.mark.parametrize("name", sorted(SINGLE_CASES))
    def test_golden_ledgers_bit_identical_with_tracing(self, name):
        net, result, _, _ = observed_golden_run(name)
        want = GOLDEN_SINGLE[name]
        got = {
            "destination": int(result.destination),
            "mode": result.mode,
            "gmw": result.get_more_walks_calls,
            **_snapshot(net),
        }
        assert got == want

    def test_serve_session_bit_identical_with_tracing(self, traced_session):
        engine_t, sched_t, _, _, _ = traced_session
        engine_u, sched_u, _ = run_session()  # same seeds, no observer
        assert engine_t.network.rounds == engine_u.network.rounds
        assert engine_t.network.ledger.messages == engine_u.network.ledger.messages
        st, su = sched_t.stats(), sched_u.stats()
        assert st.walks_served == su.walks_served
        assert st.completed == su.completed == st.submitted
        assert st.tenants == su.tenants

    def test_scheduled_endpoints_keep_exact_law_under_tracing(self):
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        engine = WalkEngine(g, seed=4321, record_paths=False)
        engine.attach_observability(tracer=Tracer(), metrics=MetricsRegistry())
        engine.prepare(lam=8)
        sched = engine.scheduler(max_batch_requests=8)
        tickets = [sched.submit([0] * 10, length) for _ in range(30)]
        sched.drain()
        endpoints = [d for t in tickets for d in t.result.destinations]
        assert len(endpoints) == 300
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_engine_without_attach_has_no_observer(self, torus_8x8=None):
        engine = WalkEngine(torus_graph(8, 8), seed=1, record_paths=False)
        assert engine.network.ledger.observer is None
        assert not engine.obs.active
        # The off path allocates nothing: one shared nullcontext.
        assert engine.obs.annotate(a=1) is engine.obs.annotate(b=2)

    def test_sinkless_attach_installs_inert_probe(self):
        engine = WalkEngine(torus_graph(8, 8), seed=1, record_paths=False)
        probe = engine.attach_observability()
        assert engine.network.ledger.observer is probe
        assert not probe.active and probe.tracer is None and probe.metrics is None
        res = engine.walk(0, 64, pooled=False, record_paths=False)
        assert res.rounds == engine.network.rounds


# ----------------------------------------------------------------------
# Balance: the trace IS the ledger, on a timeline
# ----------------------------------------------------------------------
class TestSpanBalance:
    def test_global_balance_through_churn_and_faults(self, traced_session):
        engine, _, _, tracer, _ = traced_session
        ledger = engine.network.ledger
        assert tracer.dropped == 0 and tracer.orphan_pops == 0
        assert tracer.open_depth == 0  # every push got its pop
        assert (
            tracer.total_self_rounds() + tracer.unattributed_rounds
            == ledger.rounds - tracer.attached_round
        )
        assert (
            tracer.total_self_messages() + tracer.unattributed_messages
            == ledger.messages - tracer.attached_messages
        )

    def test_per_phase_balance(self, traced_session):
        engine, _, _, tracer, _ = traced_session
        ledger = engine.network.ledger
        per = tracer.self_rounds_by_phase()
        baseline = tracer.attached_snapshot.phase_rounds
        for name, cell in ledger.phases.items():
            assert per.get(name, 0) == cell.rounds - baseline.get(name, 0), name
        assert set(per) <= set(ledger.phases)

    def test_attribution_scopes_sum_to_ledger_session_delta(self, traced_session):
        engine, sched, snap, tracer, _ = traced_session
        stats = sched.stats()
        assert stats.crashes_seen == 1 and stats.recoveries_seen == 1
        assert stats.completed == stats.submitted > 0
        # Scheduler-side extended identity (PR 7) still balances...
        delta = engine.network.ledger.delta_since(snap)
        attributed = sum(t["rounds_attributed"] for t in stats.tenants.values())
        maintain = delta.phase_rounds.get("pool-refill/maintain", 0)
        churn = delta.phase_rounds.get("pool-refill/churn", 0)
        recovery = delta.phase_rounds.get("serve/recovery", 0)
        assert attributed + maintain + churn + recovery == delta.rounds
        # ...and the trace carries the identical per-tenant split: the
        # "attribution" instants are the apportioned cohort shares.
        traced = {}
        for span in tracer.spans:
            if span.cat == "instant" and span.name == "attribution":
                tenant = span.args["tenant"]
                traced[tenant] = traced.get(tenant, 0) + span.args["rounds"]
        assert traced == {
            name: t["rounds_attributed"] for name, t in stats.tenants.items()
        }

    def test_spans_carry_context_and_episode_events(self, traced_session):
        _, _, _, tracer, _ = traced_session
        cats = {s.cat for s in tracer.spans}
        assert cats == {"phase", "scope", "instant"}
        scope_names = {s.name for s in tracer.spans if s.cat == "scope"}
        assert {"cohort", "ticket"} <= scope_names
        ticket_args = next(
            s.args for s in tracer.spans if s.cat == "scope" and s.name == "ticket"
        )
        assert {"ticket", "tenant", "cohort", "tick"} <= set(ticket_args)
        instants = {s.name for s in tracer.spans if s.cat == "instant"}
        assert {"churn", "crash", "recover"} <= instants
        crash = next(s for s in tracer.spans if s.name == "crash")
        assert crash.args["episode"] >= 1 and crash.args["nodes"] >= 1

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(ring_size=8)
        engine = WalkEngine(torus_graph(8, 8), seed=3, record_paths=False)
        engine.attach_observability(tracer=tracer)
        engine.walk(0, 256, record_paths=False)
        assert tracer.emitted > 8
        assert len(tracer.spans) == 8
        assert tracer.dropped == tracer.emitted - 8
        # Oldest-first eviction: retained spans are the trailing sequence.
        seqs = [s.seq for s in tracer.spans]
        assert seqs == sorted(seqs) and seqs[-1] == tracer.emitted
        with pytest.raises(ValueError):
            Tracer(ring_size=0)


# ----------------------------------------------------------------------
# Determinism: fixed seed → byte-identical exports
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_trace_and_metrics_reproduce_at_fixed_seed(self):
        exports = []
        for _ in range(2):
            factory, source, length, seed, kwargs = SINGLE_CASES["torus8x8-l256-s7"]
            graph = factory()
            net = Network(graph, seed=0)
            tracer, metrics = Tracer(), MetricsRegistry()
            probe = Probe(tracer=tracer, metrics=metrics)
            net.ledger.observer = probe
            probe.attached(net.ledger)
            single_random_walk(graph, source, length, seed=seed, network=net, **kwargs)
            exports.append(
                (
                    tracer.to_jsonl(),
                    json.dumps(tracer.to_chrome_trace(), sort_keys=True),
                    metrics.to_prometheus_text(),
                )
            )
        assert exports[0] == exports[1]


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_schema_valid_and_loadable(self, traced_session, tmp_path):
        _, _, _, tracer, _ = traced_session
        path = tracer.write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phs = {ev["ph"] for ev in doc["traceEvents"]}
        assert phs <= {"M", "X", "i"}
        names = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "M"
        }
        assert {"process_name", "thread_name"} <= names
        for ev in doc["traceEvents"]:
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], int) and ev["ts"] >= 0
                assert isinstance(ev["dur"], int) and ev["dur"] >= 0
                assert ev["cat"] in ("phase", "scope")
            elif ev["ph"] == "i":
                assert ev["s"] == "p"
        other = doc["otherData"]
        assert other["dropped_spans"] == 0
        assert other["ring_size"] == tracer.ring_size

    def test_jsonl_and_chrome_agree(self, traced_session, tmp_path):
        _, _, _, tracer, _ = traced_session
        jsonl = load_spans(tracer.write(tmp_path / "trace.jsonl"))
        chrome = load_spans(tracer.write(tmp_path / "trace.json"))
        assert len(jsonl) == len(chrome) == len(tracer.spans)
        key = lambda s: sum(x["self_rounds"] for x in s if x["cat"] == "phase")
        assert key(jsonl) == key(chrome) == tracer.total_self_rounds()


# ----------------------------------------------------------------------
# Metrics registry + Prometheus exposition
# ----------------------------------------------------------------------
PROM_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*(?: .*)?"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^{}]*\})? -?(?:[0-9.e+Ee-]+|\+Inf|NaN)"
    r")$"
)


class TestMetrics:
    def test_exposition_format(self, traced_session, tmp_path):
        *_, metrics = traced_session
        path = metrics.write(tmp_path / "metrics.prom")
        text = path.read_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert PROM_LINE.match(line), line
        # Every series has a HELP and TYPE header before its samples.
        assert text.count("# HELP") == text.count("# TYPE") == len(metrics)

    def test_histograms_are_cumulative(self, traced_session):
        *_, metrics = traced_session
        text = metrics.to_prometheus_text()
        hist = metrics.get("repro_ticket_latency_rounds")
        assert hist is not None
        for labels in ('tenant="free"', 'tenant="pro"'):
            buckets = [
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_ticket_latency_rounds_bucket") and labels in line
            ]
            assert buckets and buckets == sorted(buckets)  # cumulative
            count = next(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_ticket_latency_rounds_count") and labels in line
            )
            assert buckets[-1] == count  # +Inf bucket == observation count

    def test_metrics_crosscheck_scheduler_and_engine_stats(self, traced_session):
        engine, sched, _, _, metrics = traced_session
        stats = sched.stats()
        assert metrics.get("repro_walks_served_total").total() == stats.walks_served
        assert metrics.get("repro_tickets_completed_total").total() == stats.completed
        attributed = sum(t["rounds_attributed"] for t in stats.tenants.values())
        assert metrics.get("repro_rounds_attributed_total").total() == attributed
        events = metrics.get("repro_events_total")
        assert events.value(kind="crash") == 1
        assert events.value(kind="recover") == 1
        assert events.value(kind="churn") == engine.stats().churn_events == 1
        evicted = metrics.get("repro_tokens_evicted_total")
        est = engine.stats()
        if est.churn_tokens_evicted:
            assert evicted.value(cause="churn") == est.churn_tokens_evicted

    def test_registry_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("walks_total", "Walks.")
        c.inc(3, tenant="a")
        c.inc(2, tenant="a")
        c.inc(1, tenant="b")
        assert c.value(tenant="a") == 5 and c.total() == 6
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            reg.gauge("walks_total", "Kind mismatch.")
        g = reg.gauge("depth", "Depth.")
        g.set(4)
        g.set_max(2)
        assert g.value() == 4
        h = reg.histogram("lat", "Latency.")
        h.observe(3)
        h.observe(100)
        snap = reg.snapshot()
        json.dumps(snap)  # snapshot is JSON-able
        assert snap["walks_total"]["type"] == "counter"
        # Same labels, different kwarg order → the same series.
        c2 = reg.counter("pairs", "P.")
        c2.inc(1, a="1", b="2")
        c2.inc(1, b="2", a="1")
        assert c2.value(a="1", b="2") == 2


# ----------------------------------------------------------------------
# trace-report + CLI wiring
# ----------------------------------------------------------------------
class TestReportAndCli:
    def test_trace_report_summarizes_both_formats(self, traced_session, tmp_path, capsys):
        _, sched, _, tracer, _ = traced_session
        for suffix in ("json", "jsonl"):
            path = tracer.write(tmp_path / f"trace.{suffix}")
            assert cli_main(["trace-report", str(path), "--top", "5"]) == 0
            out = capsys.readouterr().out
            assert out.startswith("trace-report:")
            assert "top phases (by exclusive rounds):" in out
            assert "per-tenant rollup" in out
            assert "critical-path cohort:" in out
            for tenant in sched.stats().tenants:
                assert tenant in out

    def test_summarize_tenant_rollup_matches_attribution(self, traced_session):
        _, sched, _, tracer, _ = traced_session
        summary = summarize(tracer.span_dicts(), top=3)
        assert summary["total_self_rounds"] == tracer.total_self_rounds()
        assert len(summary["phases"]) == 3
        want = {n: t["rounds_attributed"] for n, t in sched.stats().tenants.items()}
        got = {n: c["attributed"] for n, c in summary["tenants"].items()}
        assert got == want
        assert summary["critical_cohort"] is not None
        assert {"churn", "crash", "recover"} <= set(summary["events"])

    def test_cli_walks_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "walks.jsonl"
        prom = tmp_path / "walks.prom"
        rc = cli_main(
            [
                "walks",
                "--graph",
                "torus:8x8",
                "--length",
                "128",
                "--k",
                "4",
                "--trace",
                str(trace),
                "--metrics-out",
                str(prom),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        spans = load_spans(trace)
        assert spans and all("cat" in s for s in spans)
        assert "# TYPE repro_rounds_total counter" in prom.read_text()


# ----------------------------------------------------------------------
# Consolidated telemetry: single-homed counters stay consistent
# ----------------------------------------------------------------------
class TestConsolidation:
    def test_scheduler_totals_derive_from_tenant_counters(self, traced_session):
        _, sched, _, _, _ = traced_session
        stats = sched.stats()
        tenants = stats.tenants.values()
        assert stats.submitted == sum(t["submitted"] for t in tenants)
        assert stats.completed == sum(t["completed"] for t in tenants)
        assert stats.walks_served == sum(t["walks_served"] for t in tenants)
        assert stats.rejected == sum(stats.rejects_by_reason.values())

    def test_engine_refills_survive_pool_reinstall(self):
        engine = WalkEngine(torus_graph(8, 8), seed=5, record_paths=False)
        engine.walks([0, 9, 21], 256)
        first = engine.stats().refills
        assert first == engine.pool.refills
        engine.prepare(lam=4)  # re-prepare: a fresh pool with refills == 0
        engine.walks([3, 7], 128)
        total = engine.stats().refills
        assert total >= first  # retired refills are not forgotten
        assert total == engine.pool.refills + engine._refills_retired
