"""Tests for PATH-VERIFICATION and the interval-merging verifier."""

from __future__ import annotations


import pytest

from repro.errors import GraphError
from repro.graphs import (
    build_lower_bound_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    round_bound,
)
from repro.lowerbound import (
    IntervalMergingVerifier,
    PathVerificationInstance,
    verify_path_centralized,
)


class TestInstance:
    def test_from_lower_bound_full(self):
        inst = build_lower_bound_graph(64)
        pv = PathVerificationInstance.from_lower_bound(inst)
        assert pv.length == inst.n_prime
        assert verify_path_centralized(pv.graph, pv.sequence)

    def test_from_lower_bound_prefix(self):
        inst = build_lower_bound_graph(64)
        pv = PathVerificationInstance.from_lower_bound(inst, length=10)
        assert pv.length == 10

    def test_length_validation(self):
        inst = build_lower_bound_graph(64)
        with pytest.raises(GraphError):
            PathVerificationInstance.from_lower_bound(inst, length=0)
        with pytest.raises(GraphError):
            PathVerificationInstance.from_lower_bound(inst, length=10**9)

    def test_positions_of(self):
        g = path_graph(5)
        pv = PathVerificationInstance(graph=g, sequence=(0, 1, 2, 1, 0))
        assert pv.positions_of(1) == [2, 4]
        assert pv.positions_of(4) == []


class TestCentralizedCheck:
    def test_valid_path(self):
        g = cycle_graph(6)
        assert verify_path_centralized(g, [0, 1, 2, 3])

    def test_invalid_path(self):
        g = path_graph(5)
        assert not verify_path_centralized(g, [0, 2])

    def test_repeated_vertices_fine(self):
        g = path_graph(3)
        assert verify_path_centralized(g, [0, 1, 0, 1, 2])


class TestVerifier:
    def test_simple_path_verifies(self):
        g = path_graph(12)
        pv = PathVerificationInstance(graph=g, sequence=tuple(range(12)))
        result = IntervalMergingVerifier(pv).run()
        assert result.verified
        assert result.verifier_node is not None
        assert result.rounds >= 1

    def test_rounds_scale_with_path_length_on_a_path_graph(self):
        # Without shortcuts, information travels 1 hop/round: verifying a
        # length-n path needs Ω(n) rounds.
        g = path_graph(40)
        pv = PathVerificationInstance(graph=g, sequence=tuple(range(40)))
        result = IntervalMergingVerifier(pv).run()
        assert result.rounds >= 19  # roughly half the length (meet in middle)

    def test_complete_graph_is_fast(self):
        g = complete_graph(12)
        seq = tuple(range(12))
        result = IntervalMergingVerifier(
            PathVerificationInstance(graph=g, sequence=seq)
        ).run()
        assert result.verified
        assert result.rounds <= 12

    def test_non_path_sequence_rejected(self):
        g = path_graph(5)
        with pytest.raises(GraphError):
            IntervalMergingVerifier(PathVerificationInstance(graph=g, sequence=(0, 3)))

    def test_coverage_history_monotone(self):
        g = path_graph(20)
        pv = PathVerificationInstance(graph=g, sequence=tuple(range(20)))
        result = IntervalMergingVerifier(pv).run()
        hist = result.coverage_history
        assert all(a <= b for a, b in zip(hist, hist[1:]))
        assert hist[-1] == 20

    def test_round_budget(self):
        g = path_graph(30)
        pv = PathVerificationInstance(graph=g, sequence=tuple(range(30)))
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            IntervalMergingVerifier(pv).run(max_rounds=2)

    def test_verifier_holds_full_interval(self):
        g = cycle_graph(10)
        pv = PathVerificationInstance(graph=g, sequence=tuple(range(10)))
        verifier = IntervalMergingVerifier(pv)
        result = verifier.run()
        state = verifier.states[result.verifier_node]
        assert state.verified.covers((1, 10))


class TestOnLowerBoundGraph:
    def test_verifies_and_respects_lower_bound(self):
        inst = build_lower_bound_graph(128)
        pv = PathVerificationInstance.from_lower_bound(inst)
        result = IntervalMergingVerifier(pv).run()
        assert result.verified
        # Theorem 3.2: any algorithm in the class needs at least
        # ~sqrt(l/log l) rounds (up to the proof's constants); our greedy
        # algorithm must sit above a constant fraction of that curve and
        # be at most ~the trivial O(l) bound.
        curve = round_bound(pv.length)
        assert result.rounds >= 0.3 * curve
        assert result.rounds <= pv.length

    def test_much_faster_than_path_only(self):
        # The tree shortcuts must beat the pure-path linear time.
        inst = build_lower_bound_graph(256)
        pv = PathVerificationInstance.from_lower_bound(inst)
        result = IntervalMergingVerifier(pv).run()
        assert result.rounds < pv.length / 3

    def test_rounds_grow_with_instance(self):
        r_small = IntervalMergingVerifier(
            PathVerificationInstance.from_lower_bound(build_lower_bound_graph(64))
        ).run()
        r_large = IntervalMergingVerifier(
            PathVerificationInstance.from_lower_bound(build_lower_bound_graph(1024))
        ).run()
        assert r_large.rounds > r_small.rounds
