"""Tests for the PODC'09 baseline — exactness and parameter behaviour."""

from __future__ import annotations

import pytest

from repro.errors import WalkError
from repro.graphs import complete_graph, hypercube_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import podc09_params, podc09_random_walk


class TestParams:
    def test_balancing_formulas(self):
        p = podc09_params(1000, 10)
        assert p.lam == round(1000 ** (1 / 3) * 10 ** (2 / 3))
        assert p.eta == pytest.approx((1000 / 10) ** (1 / 3))
        assert not p.degree_proportional
        assert not p.randomized_lengths

    def test_use_naive_when_lambda_large(self):
        p = podc09_params(5, 100)
        assert p.use_naive

    def test_validation(self):
        with pytest.raises(WalkError):
            podc09_params(0, 5)
        with pytest.raises(WalkError):
            podc09_params(10, 0)


class TestWalk:
    def test_valid_trajectory(self, torus_6x6):
        res = podc09_random_walk(torus_6x6, 0, 300, seed=1)
        assert res.mode == "podc09"
        res.verify_positions(torus_6x6)

    def test_fixed_segment_lengths(self, torus_6x6):
        res = podc09_random_walk(torus_6x6, 0, 300, seed=2)
        assert all(seg.length == res.lam for seg in res.segments)

    def test_endpoint_distribution_chi_square(self):
        g = complete_graph(6)
        length = 40
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = [
            podc09_random_walk(g, 0, length, seed=500 + i, record_paths=False).destination
            for i in range(500)
        ]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_naive_fallback(self, torus_6x6):
        res = podc09_random_walk(torus_6x6, 0, 2, seed=3)
        assert res.mode == "naive"

    def test_deterministic(self, torus_6x6):
        a = podc09_random_walk(torus_6x6, 0, 200, seed=4)
        b = podc09_random_walk(torus_6x6, 0, 200, seed=4)
        assert a.destination == b.destination and a.rounds == b.rounds

    def test_validation(self, torus_6x6):
        with pytest.raises(WalkError):
            podc09_random_walk(torus_6x6, 0, 0, seed=0)
        with pytest.raises(WalkError):
            podc09_random_walk(torus_6x6, 77, 5, seed=0)


class TestComparativeScaling:
    def test_new_algorithm_wins_at_long_lengths(self):
        # Theorem 2.5's point: √(ℓD) beats ℓ^(2/3)D^(1/3) for large ℓ.
        from repro.walks import single_random_walk

        g = hypercube_graph(6)
        length = 8000
        new = single_random_walk(g, 0, length, seed=5, record_paths=False)
        old = podc09_random_walk(g, 0, length, seed=5, record_paths=False)
        assert new.rounds < old.rounds
