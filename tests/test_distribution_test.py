"""Tests for the Batu-style identity tester (Theorem 4.5 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps import BucketingIdentityTester, recommended_sample_count
from repro.errors import GraphError
from repro.graphs import star_graph, torus_graph
from repro.markov import stationary_distribution
from repro.util.rng import make_rng

THRESHOLD = 1.0 / (4.0 * math.e)  # the mixing estimator's default


class TestConstruction:
    def test_bucket_masses_sum_to_one(self):
        pi = stationary_distribution(star_graph(16))
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        assert sum(tester.bucket_mass.values()) == pytest.approx(1.0)

    def test_skewed_distribution_gets_multiple_buckets(self):
        pi = stationary_distribution(star_graph(32))
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        assert len(tester.bucket_mass) >= 2

    def test_regular_graph_single_bucket(self):
        pi = stationary_distribution(torus_graph(4, 4))
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        assert len(tester.bucket_mass) == 1

    def test_validation(self):
        with pytest.raises(GraphError):
            BucketingIdentityTester([0.5, 0.6], threshold=0.1)
        with pytest.raises(GraphError):
            BucketingIdentityTester([0.5, 0.5], threshold=0.0)
        with pytest.raises(GraphError):
            BucketingIdentityTester([0.5, 0.5], threshold=0.1, bucket_ratio=1.0)
        with pytest.raises(GraphError):
            BucketingIdentityTester([1.0], threshold=0.1)


class TestVerdicts:
    def test_true_distribution_passes(self):
        rng = make_rng(0)
        g = torus_graph(5, 5)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        samples = rng.choice(g.n, size=1200, p=pi)
        verdict = tester.test(samples)
        assert verdict.passed, verdict

    def test_point_mass_fails(self):
        g = torus_graph(5, 5)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        verdict = tester.test(np.zeros(1200, dtype=np.int64))
        assert not verdict.passed

    def test_uniform_on_regular_graph_passes_despite_single_bucket(self):
        # All-nodes-same-pi: the bucket statistic is blind (one bucket), so
        # the collision statistic must carry the test.
        rng = make_rng(1)
        g = torus_graph(5, 5)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        half = np.arange(g.n)[: g.n // 2]
        concentrated = rng.choice(half, size=1200)  # uniform on half the nodes
        assert not tester.test(concentrated).passed
        fair = rng.choice(g.n, size=1200, p=pi)
        assert tester.test(fair).passed

    def test_skew_caught_by_buckets(self):
        # On the star, sampling leaves-only misses the hub's 1/2 mass.
        rng = make_rng(2)
        g = star_graph(32)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        leaves_only = rng.integers(1, g.n, size=1200)
        verdict = tester.test(leaves_only)
        assert not verdict.passed
        assert verdict.bucket_tv > 0.3

    def test_l2_statistic_near_zero_for_true_samples(self):
        rng = make_rng(3)
        g = torus_graph(5, 5)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        samples = rng.choice(g.n, size=3000, p=pi)
        assert abs(tester.l2_statistic(samples)) < 5e-3

    def test_l2_statistic_positive_for_wrong_samples(self):
        g = torus_graph(5, 5)
        pi = stationary_distribution(g)
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        samples = np.zeros(3000, dtype=np.int64)
        # ||delta_0 - pi||_2^2 = 1 - 2/n + 1/n.
        assert tester.l2_statistic(samples) == pytest.approx(1 - 1 / g.n, rel=0.05)

    def test_sample_validation(self):
        pi = stationary_distribution(torus_graph(4, 4))
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        with pytest.raises(GraphError):
            tester.test([0])
        with pytest.raises(GraphError):
            tester.test([999, 1])


class TestCosting:
    def test_aggregation_rounds_formula(self):
        pi = stationary_distribution(star_graph(16))
        tester = BucketingIdentityTester(pi, threshold=THRESHOLD)
        rounds = tester.aggregation_rounds(tree_height=3, samples=100)
        assert rounds == 2 * 3 + min(100, len(tester.bucket_mass))

    def test_recommended_sample_count_scales(self):
        assert recommended_sample_count(10_000) > recommended_sample_count(100)
        assert recommended_sample_count(100) >= 64
        with pytest.raises(GraphError):
            recommended_sample_count(1)
