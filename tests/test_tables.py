"""Tests for repro.util.tables — report formatting."""

from __future__ import annotations

import pytest

from repro.util.tables import format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159) == "3.142"

    def test_large_float_scientific(self):
        assert "e" in format_cell(1.5e9)

    def test_small_float_scientific(self):
        assert "e" in format_cell(1.5e-7)

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_bool_and_none(self):
        assert format_cell(True) == "True"
        assert format_cell(None) == "None"


class TestRenderTable:
    def test_alignment_and_content(self):
        table = render_table(["name", "rounds"], [["naive", 512], ["stitched", 96]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "512" in table and "stitched" in table
        # header separator present
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_title(self):
        table = render_table(["a"], [[1]], title="E1")
        assert table.splitlines()[0] == "E1"
        assert table.splitlines()[1] == "=="

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        table = render_table(["x"], [])
        assert "x" in table
