"""Tests for the naive baseline — both the charged and protocol versions."""

from __future__ import annotations

import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import cycle_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import TokenWalkProtocol, naive_random_walk


class TestChargedNaiveWalk:
    def test_rounds_equal_length(self, torus_6x6):
        res = naive_random_walk(torus_6x6, 0, 321, seed=1)
        assert res.rounds == 321
        assert res.mode == "naive"

    def test_report_doubles_rounds(self, torus_6x6):
        res = naive_random_walk(torus_6x6, 0, 100, seed=2, report_to_source=True)
        assert res.rounds == 200

    def test_positions_valid(self, torus_6x6):
        res = naive_random_walk(torus_6x6, 0, 150, seed=3)
        res.verify_positions(torus_6x6)

    def test_validation(self, torus_6x6):
        with pytest.raises(WalkError):
            naive_random_walk(torus_6x6, 99, 10, seed=0)
        with pytest.raises(WalkError):
            naive_random_walk(torus_6x6, 0, 0, seed=0)

    def test_endpoint_law(self):
        g = cycle_graph(8)
        dist = WalkSpectrum(g).distribution(0, 11)
        endpoints = [naive_random_walk(g, 0, 11, seed=i).destination for i in range(800)]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)


class TestTokenWalkProtocol:
    def test_protocol_rounds_equal_length(self):
        g = torus_graph(5, 5)
        net = Network(g, seed=4)
        proto = TokenWalkProtocol(source=0, length=40)
        rounds = net.run(proto)
        assert rounds == 40
        assert proto.destination is not None

    def test_protocol_trajectory_valid(self):
        g = torus_graph(5, 5)
        net = Network(g, seed=5)
        proto = TokenWalkProtocol(source=3, length=25)
        net.run(proto)
        assert len(proto.trajectory) == 26
        assert proto.trajectory[0] == 3
        assert proto.trajectory[-1] == proto.destination
        for a, b in zip(proto.trajectory, proto.trajectory[1:]):
            assert g.has_edge(a, b)

    def test_protocol_matches_charged_endpoint_law(self):
        # Same algorithm, two engine styles: both must follow P^t.
        g = cycle_graph(6)
        dist = WalkSpectrum(g).distribution(0, 9)
        endpoints = []
        for i in range(600):
            net = Network(g, seed=1000 + i)
            proto = TokenWalkProtocol(source=0, length=9)
            net.run(proto)
            endpoints.append(proto.destination)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_zero_length_token(self):
        g = cycle_graph(5)
        net = Network(g, seed=6)
        proto = TokenWalkProtocol(source=2, length=0)
        rounds = net.run(proto)
        assert rounds == 0
        assert proto.destination == 2
