"""Tests for SINGLE-RANDOM-WALK — exactness (Theorem 2.5's Las Vegas claim),
structure of the stitched trajectory, and round accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.errors import WalkError
from repro.graphs import complete_graph, cycle_graph, hypercube_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import naive_random_walk, single_random_walk


class TestBasicContract:
    def test_returns_valid_walk(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 200, seed=1)
        assert res.mode == "stitched"
        assert res.length == 200
        res.verify_positions(torus_6x6)

    def test_naive_fallback_for_short_walks(self, torus_6x6):
        # ℓ smaller than λ: the algorithm itself says walk naively.
        res = single_random_walk(torus_6x6, 0, 3, seed=2)
        assert res.mode == "naive"
        res.verify_positions(torus_6x6)

    def test_explicit_lambda_respected(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 100, seed=3, lam=10)
        assert res.lam == 10
        assert res.mode == "stitched"

    def test_segments_partition_the_walk(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 300, seed=4)
        seg_total = sum(seg.length for seg in res.segments)
        assert seg_total <= 300
        # Tail is shorter than 2λ by the loop guard.
        assert 300 - seg_total < 2 * res.lam
        # Connectors are the segment start points.
        assert len(res.connectors) == len(res.segments)
        assert res.connectors[0] == 0

    def test_segment_lengths_in_range(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 400, seed=5)
        for seg in res.segments:
            assert res.lam <= seg.length <= 2 * res.lam - 1

    def test_phase_breakdown_present(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 200, seed=6)
        for phase in ("setup", "phase1", "sample-destination", "stitch-route"):
            assert phase in res.phase_rounds, phase
        assert sum(res.phase_rounds.values()) == res.rounds

    def test_deterministic_given_seed(self, torus_6x6):
        r1 = single_random_walk(torus_6x6, 0, 150, seed=7)
        r2 = single_random_walk(torus_6x6, 0, 150, seed=7)
        assert r1.destination == r2.destination
        assert r1.rounds == r2.rounds
        assert np.array_equal(r1.positions, r2.positions)

    def test_different_seeds_differ(self, torus_6x6):
        dests = {single_random_walk(torus_6x6, 0, 150, seed=s).destination for s in range(8)}
        assert len(dests) > 1

    def test_no_record_paths(self, torus_6x6):
        res = single_random_walk(torus_6x6, 0, 200, seed=8, record_paths=False)
        assert res.positions is None
        with pytest.raises(WalkError):
            res.verify_positions(torus_6x6)

    def test_external_network_accumulates(self, torus_6x6):
        net = Network(torus_6x6, seed=9)
        single_random_walk(torus_6x6, 0, 100, seed=9, network=net)
        after_first = net.rounds
        single_random_walk(torus_6x6, 1, 100, seed=10, network=net)
        assert net.rounds > after_first

    def test_validation(self, torus_6x6):
        with pytest.raises(WalkError):
            single_random_walk(torus_6x6, -1, 10, seed=0)
        with pytest.raises(WalkError):
            single_random_walk(torus_6x6, 0, 0, seed=0)


class TestExactness:
    """The headline Las Vegas claim: output law is exactly the ℓ-step law."""

    @pytest.mark.parametrize("factory,length", [
        (lambda: torus_graph(4, 4), 30),
        (lambda: cycle_graph(9), 25),
        (lambda: complete_graph(6), 40),
    ])
    def test_endpoint_distribution_chi_square(self, factory, length):
        g = factory()
        dist = WalkSpectrum(g).distribution(0, length)
        n_samples = 600
        endpoints = [
            single_random_walk(g, 0, length, seed=1000 + i, record_paths=False).destination
            for i in range(n_samples)
        ]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        result = chi_square_goodness_of_fit(observed, expected)
        assert not result.rejects_at(1e-4), result

    def test_every_sample_is_a_genuine_walk(self):
        g = hypercube_graph(4)
        for i in range(25):
            res = single_random_walk(g, 0, 120, seed=i)
            res.verify_positions(g)


class TestGetMoreWalksFallback:
    def test_invoked_when_pool_too_small(self):
        # Tiny η and a long walk relative to the pool forces GET-MORE-WALKS.
        g = cycle_graph(8)  # 16 tokens at eta=1; stitching burns them fast
        res = single_random_walk(g, 0, 600, seed=11, lam=3)
        assert res.get_more_walks_calls > 0
        res.verify_positions(g)

    def test_rarely_invoked_at_default_parameters(self, torus_8x8):
        calls = [
            single_random_walk(torus_8x8, 0, 400, seed=i, record_paths=False).get_more_walks_calls
            for i in range(10)
        ]
        assert sum(calls) == 0  # Lemma 2.6/2.7 regime: never needed


class TestRoundScaling:
    def test_beats_naive_on_long_walks_small_diameter(self):
        g = hypercube_graph(6)  # n=64, D=6
        length = 6000
        stitched = single_random_walk(g, 0, length, seed=12, record_paths=False)
        naive = naive_random_walk(g, 0, length, seed=12, record_paths=False)
        assert naive.rounds == length
        assert stitched.rounds < naive.rounds

    def test_rounds_grow_sublinearly(self):
        g = hypercube_graph(6)
        r1 = single_random_walk(g, 0, 1000, seed=13, record_paths=False).rounds
        r2 = single_random_walk(g, 0, 4000, seed=13, record_paths=False).rounds
        # √ scaling: 4x length should cost well under 4x rounds.
        assert r2 < 3.2 * r1
