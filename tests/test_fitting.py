"""Tests for repro.util.fitting — scaling-exponent recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.fitting import fit_power_law, ratio_stability


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = [2, 4, 8, 16, 32]
        ys = [3.0 * x**0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-12)

    def test_linear(self):
        xs = [1, 10, 100]
        fit = fit_power_law(xs, [7 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_noisy_data_close(self):
        rng = np.random.default_rng(0)
        xs = np.array([2.0**i for i in range(3, 12)])
        ys = 5 * xs**0.66 * np.exp(rng.normal(0, 0.05, len(xs)))
        fit = fit_power_law(xs, ys)
        assert 0.55 < fit.exponent < 0.77
        assert fit.r_squared > 0.97

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0, rel=1e-9)

    def test_str_contains_exponent(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert "x^1.000" in str(fit)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([3], [4])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 4])
        with pytest.raises(ValueError):
            fit_power_law([-1, 2], [1, 4])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([5, 5, 5], [1, 2, 3])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestRatioStability:
    def test_proportional_series_is_stable(self):
        xs = [1, 2, 3, 4]
        ys = [10, 20, 30, 40]
        ref = [1, 2, 3, 4]
        assert ratio_stability(xs, ys, ref) == pytest.approx(1.0)

    def test_detects_divergence(self):
        ys = [10, 40]
        ref = [1, 2]
        assert ratio_stability([1, 2], ys, ref) == pytest.approx(2.0)

    def test_rejects_nonpositive_reference(self):
        with pytest.raises(ValueError):
            ratio_stability([1], [1], [0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ratio_stability([1, 2], [1, 2], [1])
