"""Shared fixtures for the test suite.

Every randomized test takes explicit seeds so the suite is deterministic;
statistical assertions use chi-square / TV thresholds loose enough that a
correct implementation passes for *all* seeds we ship, while an incorrect
sampler (wrong law, off-by-one in lengths, biased stitching) fails hard.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)


@pytest.fixture
def torus_6x6():
    return torus_graph(6, 6)


@pytest.fixture
def torus_8x8():
    return torus_graph(8, 8)


@pytest.fixture
def cycle_24():
    return cycle_graph(24)


@pytest.fixture
def path_16():
    return path_graph(16)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def k4():
    return complete_graph(4)


@pytest.fixture
def grid_5x5():
    return grid_graph(5, 5)


@pytest.fixture
def hypercube_5():
    return hypercube_graph(5)


@pytest.fixture
def star_12():
    return star_graph(12)


@pytest.fixture
def barbell_small():
    return barbell_graph(6, 3)


@pytest.fixture
def expander_64():
    return random_regular_graph(64, 4, 12345)


SMALL_FAMILIES = [
    ("cycle", lambda: cycle_graph(16)),
    ("torus", lambda: torus_graph(4, 4)),
    ("complete", lambda: complete_graph(8)),
    ("star", lambda: star_graph(10)),
    ("grid", lambda: grid_graph(4, 4)),
    ("barbell", lambda: barbell_graph(5, 2)),
]


@pytest.fixture(params=SMALL_FAMILIES, ids=[name for name, _ in SMALL_FAMILIES])
def small_graph(request):
    _name, factory = request.param
    return factory()
