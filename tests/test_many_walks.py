"""Tests for MANY-RANDOM-WALKS — both Theorem 2.8 regimes and exactness."""

from __future__ import annotations

import pytest

from repro.errors import WalkError
from repro.graphs import complete_graph, cycle_graph, hypercube_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import many_random_walks, many_walks_params


class TestParams:
    def test_naive_branch_when_lambda_exceeds_length(self):
        # Large k and D force λ > ℓ: Theorem 2.8's k+ℓ branch.
        p = many_walks_params(50, 20, 30, n=64)
        assert p.use_naive

    def test_stitched_branch(self):
        p = many_walks_params(2, 5000, 8, n=64)
        assert not p.use_naive

    def test_validation(self):
        with pytest.raises(WalkError):
            many_walks_params(0, 10, 5)


class TestNaiveParallelMode:
    def test_mode_and_counts(self, torus_6x6):
        # Many sources, short walks: λ = √(kℓD)+k exceeds ℓ -> naive branch.
        res = many_random_walks(torus_6x6, list(range(12)), 25, seed=1)
        assert res.mode == "naive-parallel"
        assert res.k == 12
        assert len(res.destinations) == 12

    def test_rounds_near_k_plus_length(self, torus_6x6):
        k, length = 16, 30
        res = many_random_walks(torus_6x6, list(range(k)), length, seed=2)
        assert res.mode == "naive-parallel"
        # ℓ iterations with mild congestion plus the k-report term.
        assert res.rounds >= length
        assert res.rounds <= 4 * (k + length)

    def test_trajectories_when_recorded(self, torus_6x6):
        res = many_random_walks(torus_6x6, [0, 7], 30, seed=3, record_paths=True)
        assert res.positions is not None
        for src, traj in zip(res.sources, res.positions):
            assert traj[0] == src and len(traj) == 31
            for a, b in zip(traj[:-1], traj[1:]):
                assert torus_6x6.has_edge(int(a), int(b))

    def test_endpoint_law_per_walk(self):
        g = cycle_graph(8)
        length = 10
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints: list[int] = []
        for i in range(60):
            res = many_random_walks(g, [0] * 10, length, seed=100 + i)
            endpoints.extend(res.destinations)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)


class TestStitchedMode:
    def test_mode_forced_by_small_lambda(self):
        g = hypercube_graph(5)
        res = many_random_walks(g, [0, 3], 800, seed=4, lam=40)
        assert res.mode == "stitched"
        assert len(res.destinations) == 2

    def test_endpoint_law_stitched(self):
        g = complete_graph(6)
        length = 60
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints: list[int] = []
        for i in range(120):
            res = many_random_walks(g, [0] * 4, length, seed=300 + i, lam=8)
            assert res.mode == "stitched"
            endpoints.extend(res.destinations)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n)}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_positions_recorded_in_stitched_mode(self):
        g = hypercube_graph(5)
        res = many_random_walks(g, [0, 1], 500, seed=5, lam=30, record_paths=True)
        assert res.mode == "stitched"
        assert res.positions is not None
        for src, traj in zip(res.sources, res.positions):
            assert traj[0] == src and len(traj) == 501

    def test_shared_pool_spends_tokens_once(self):
        # k stitched walks from one source must never reuse a segment:
        # the store must be drawn down by at least the stitch count.
        g = hypercube_graph(5)
        res = many_random_walks(g, [0] * 3, 600, seed=6, lam=30)
        assert res.mode == "stitched"
        # all three walks completed with valid endpoints
        assert all(0 <= d < g.n for d in res.destinations)


class TestScaling:
    def test_k_walks_cheaper_than_k_separate_runs(self):
        from repro.walks import single_random_walk

        g = hypercube_graph(6)
        length = 2000
        k = 4
        batch = many_random_walks(g, [0] * k, length, seed=7)
        separate = sum(
            single_random_walk(g, 0, length, seed=8 + i, record_paths=False).rounds
            for i in range(k)
        )
        assert batch.rounds < separate

    def test_validation(self, torus_6x6):
        with pytest.raises(WalkError):
            many_random_walks(torus_6x6, [], 10, seed=0)
        with pytest.raises(WalkError):
            many_random_walks(torus_6x6, [0], 0, seed=0)
        with pytest.raises(WalkError):
            many_random_walks(torus_6x6, [99], 10, seed=0)
