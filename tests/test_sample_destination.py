"""Tests for SAMPLE-DESTINATION — uniformity (Lemma A.2) and O(D) cost."""

from __future__ import annotations


from repro.congest import Network
from repro.graphs import eccentricity, grid_graph, path_graph, torus_graph
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import TokenRecord, WalkStore, sample_destination
from repro.walks.sample_destination import make_sample_combine, sample_destination_protocol


def seeded_store(layout: dict[int, int], source: int = 0) -> WalkStore:
    """Store with ``layout[holder] = count`` tokens of ``source``."""
    store = WalkStore()
    for holder, count in layout.items():
        for _ in range(count):
            store.add(
                TokenRecord(
                    token_id=store.new_token_id(),
                    source=source,
                    length=3,
                    destination=holder,
                )
            )
    return store


class TestSampling:
    def test_returns_existing_token_and_removes_it(self):
        g = grid_graph(3, 3)
        store = seeded_store({4: 2, 7: 1})
        net = Network(g, seed=0)
        record, tree = sample_destination(net, store, 0, make_rng(1))
        assert record is not None
        assert record.source == 0
        assert store.count_for_source(0) == 2
        assert tree.root == 0

    def test_none_when_empty(self):
        g = grid_graph(3, 3)
        net = Network(g, seed=0)
        record, _tree = sample_destination(net, WalkStore(), 0, make_rng(1))
        assert record is None

    def test_uniform_over_tokens_chi_square(self):
        # 3 tokens at node 8, 1 at node 4: holder 8 should win 75% of draws.
        g = grid_graph(3, 3)
        rng = make_rng(42)
        draws = []
        for _ in range(2000):
            store = seeded_store({8: 3, 4: 1})
            net = Network(g, seed=0)
            record, _ = sample_destination(net, store, 0, rng)
            draws.append(record.destination)
        observed = {8: draws.count(8), 4: draws.count(4)}
        result = chi_square_goodness_of_fit(observed, {8: 0.75, 4: 0.25})
        assert not result.rejects_at(1e-4)

    def test_uniform_over_token_ids(self):
        # Every individual token equally likely, not just every holder.
        g = path_graph(5)
        rng = make_rng(7)
        counts: dict[int, int] = {}
        for _ in range(3000):
            store = seeded_store({2: 2, 4: 1})
            net = Network(g, seed=0)
            record, _ = sample_destination(net, store, 0, rng)
            counts[record.token_id] = counts.get(record.token_id, 0) + 1
        result = chi_square_goodness_of_fit(counts, {tid: 1 / 3 for tid in counts})
        assert not result.rejects_at(1e-4)

    def test_successive_samples_exhaust_store(self):
        g = grid_graph(3, 3)
        store = seeded_store({1: 1, 5: 1})
        net = Network(g, seed=0)
        rng = make_rng(3)
        first, _ = sample_destination(net, store, 0, rng)
        second, _ = sample_destination(net, store, 0, rng)
        third, _ = sample_destination(net, store, 0, rng)
        assert {first.token_id, second.token_id} == {0, 1}
        assert third is None


class TestRounds:
    def test_cost_is_three_sweeps(self):
        g = torus_graph(4, 4)
        store = seeded_store({6: 1})
        net = Network(g, seed=0)
        before = net.rounds
        sample_destination(net, store, 0, make_rng(1))
        ecc = eccentricity(g, 0)
        # Sweep 1 (flood, <= ecc+1) + sweep 2 (ecc) + sweep 3 (ecc).
        assert before + 3 * ecc <= net.rounds <= before + 3 * ecc + 1

    def test_empty_store_skips_delete_sweep(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=0)
        sample_destination(net, WalkStore(), 0, make_rng(1))
        ecc = eccentricity(g, 0)
        assert net.rounds <= 2 * ecc + 1

    def test_tree_cache_reused(self):
        g = grid_graph(4, 4)
        cache: dict = {}
        net = Network(g, seed=0)
        store = seeded_store({3: 5})
        r1, _ = sample_destination(net, store, 0, make_rng(1), tree_cache=cache)
        rounds_first = net.rounds
        r2, _ = sample_destination(net, store, 0, make_rng(2), tree_cache=cache)
        assert net.rounds == 2 * rounds_first  # identical charge both times
        assert r1.token_id != r2.token_id


class TestProtocolEquivalence:
    """The event-driven Algorithm 3 vs the charged fast path."""

    def test_rounds_agree(self):
        g = grid_graph(4, 5)
        layout = {7: 2, 13: 1, 19: 3}

        net_fast = Network(g, seed=0)
        store_fast = seeded_store(layout)
        before = net_fast.rounds
        rec_fast, _ = sample_destination(net_fast, store_fast, 0, make_rng(1))
        fast_rounds = net_fast.rounds - before

        net_proto = Network(g, seed=0)
        store_proto = seeded_store(layout)
        rec_proto, proto_rounds = sample_destination_protocol(
            net_proto, store_proto, 0, make_rng(1)
        )
        assert rec_fast is not None and rec_proto is not None
        # The flood may spend one extra trailing round (deepest nodes still
        # forward); sweeps 2 and 3 are identical.
        assert abs(proto_rounds - fast_rounds) <= 1

    def test_sampling_law_agrees(self):
        # Both versions must be uniform over tokens: compare their empirical
        # holder frequencies against each other's exact law (3:1).
        g = grid_graph(3, 3)
        rng = make_rng(9)
        wins = {8: 0, 4: 0}
        for _ in range(1500):
            store = seeded_store({8: 3, 4: 1})
            net = Network(g, seed=0)
            rec, _rounds = sample_destination_protocol(net, store, 0, rng)
            wins[rec.destination] += 1
        result = chi_square_goodness_of_fit(wins, {8: 0.75, 4: 0.25})
        assert not result.rejects_at(1e-4)

    def test_protocol_removes_token(self):
        g = grid_graph(3, 3)
        store = seeded_store({5: 1})
        net = Network(g, seed=0)
        rec, _ = sample_destination_protocol(net, store, 0, make_rng(2))
        assert rec is not None
        assert store.count_for_source(0) == 0

    def test_protocol_none_when_empty(self):
        g = grid_graph(3, 3)
        net = Network(g, seed=0)
        rec, rounds = sample_destination_protocol(net, WalkStore(), 0, make_rng(3))
        assert rec is None
        assert rounds > 0  # sweeps 1–2 still ran


class TestCombine:
    def test_weighted_merge_probabilities(self):
        rng = make_rng(0)
        combine = make_sample_combine(rng)
        rec_a = TokenRecord(token_id=1, source=0, length=3, destination=1)
        rec_b = TokenRecord(token_id=2, source=0, length=3, destination=2)
        wins_a = 0
        trials = 5000
        for _ in range(trials):
            total, rec = combine((3, rec_a), (1, rec_b))
            assert total == 4
            wins_a += rec.token_id == 1
        assert abs(wins_a / trials - 0.75) < 0.03

    def test_zero_counts(self):
        combine = make_sample_combine(make_rng(0))
        rec = TokenRecord(token_id=1, source=0, length=3, destination=1)
        assert combine((0, None), (0, None)) == (0, None)
        assert combine((0, None), (2, rec)) == (2, rec)
        assert combine((2, rec), (0, None)) == (2, rec)
