"""Tests for the distributed RST application (Theorem 4.1)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.apps import aldous_broder_tree, first_entry_tree, random_spanning_tree, wilson_tree
from repro.apps.wilson import cover_time_of
from repro.errors import ConvergenceError, GraphError
from repro.graphs import (
    complete_graph,
    lollipop_graph,
    torus_graph,
    tree_probabilities,
)
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit


class TestFirstEntryTree:
    def test_known_trajectory(self):
        edges = first_entry_tree([0, 1, 2, 1, 3], 4)
        assert edges == [(0, 1), (1, 2), (1, 3)]

    def test_not_covering_raises(self):
        with pytest.raises(GraphError):
            first_entry_tree([0, 1, 0], 3)

    def test_cover_time(self):
        assert cover_time_of([0, 1, 0, 2], 3) == 3
        assert cover_time_of([0, 1, 0], 3) is None


class TestCentralizedSamplers:
    def test_aldous_broder_uniform_on_k4(self):
        g = complete_graph(4)
        rng = make_rng(0)
        counts = Counter(aldous_broder_tree(g, 0, rng)[0] for _ in range(4000))
        expected = tree_probabilities(g)
        assert not chi_square_goodness_of_fit(counts, expected).rejects_at(1e-4)

    def test_wilson_uniform_on_k4(self):
        g = complete_graph(4)
        rng = make_rng(1)
        counts = Counter(wilson_tree(g, 0, rng) for _ in range(4000))
        expected = tree_probabilities(g)
        assert not chi_square_goodness_of_fit(counts, expected).rejects_at(1e-4)

    def test_wilson_uniform_on_cycle_plus_chord(self):
        from repro.graphs import Graph

        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        rng = make_rng(2)
        counts = Counter(wilson_tree(g, 0, rng) for _ in range(4000))
        expected = tree_probabilities(g)
        assert not chi_square_goodness_of_fit(counts, expected).rejects_at(1e-4)

    def test_samplers_produce_valid_trees(self):
        g = torus_graph(4, 4)
        rng = make_rng(3)
        tree_ab, cover = aldous_broder_tree(g, 0, rng)
        assert g.subgraph_is_spanning_tree(tree_ab)
        assert cover >= g.n - 1
        tree_w = wilson_tree(g, 0, rng)
        assert g.subgraph_is_spanning_tree(tree_w)


class TestDistributedRST:
    def test_returns_spanning_tree(self, torus_6x6):
        res = random_spanning_tree(torus_6x6, seed=1)
        assert torus_6x6.subgraph_is_spanning_tree(res.edges)
        assert res.rounds > 0
        assert res.cover_time >= torus_6x6.n - 1

    def test_phases_double(self, cycle_24):
        res = random_spanning_tree(cycle_24, seed=2)
        lengths = [p.length for p in res.phases]
        for a, b in zip(lengths, lengths[1:]):
            assert b == 2 * a
        assert res.phases[-1].covered

    def test_deterministic(self, torus_6x6):
        a = random_spanning_tree(torus_6x6, seed=3)
        b = random_spanning_tree(torus_6x6, seed=3)
        assert a.tree == b.tree and a.rounds == b.rounds

    def test_works_on_slow_cover_graphs(self):
        g = lollipop_graph(8, 8)
        res = random_spanning_tree(g, seed=4)
        assert g.subgraph_is_spanning_tree(res.edges)

    def test_custom_root_and_walks(self, grid_5x5):
        res = random_spanning_tree(grid_5x5, root=12, seed=5, walks_per_phase=2)
        assert grid_5x5.subgraph_is_spanning_tree(res.edges)
        assert all(p.walks == 2 for p in res.phases)

    def test_max_phases_exceeded(self, cycle_24):
        with pytest.raises(ConvergenceError):
            random_spanning_tree(cycle_24, seed=6, initial_length=1, max_phases=2)

    def test_validation(self):
        with pytest.raises(GraphError):
            random_spanning_tree(complete_graph(4), root=99, seed=0)

    def test_uniformity_on_k4(self):
        # The distributed pipeline end-to-end must reproduce the uniform
        # law (conditioning on covering within the doubled length is a
        # vanishing bias once lengths are > 2x cover time; alpha is set
        # accordingly).
        g = complete_graph(4)
        counts = Counter(
            random_spanning_tree(g, seed=1000 + i, initial_length=64).tree
            for i in range(1200)
        )
        expected = tree_probabilities(g)
        result = chi_square_goodness_of_fit(counts, expected)
        assert not result.rejects_at(1e-5), result

    def test_rounds_beat_naive_cover_walk(self):
        # Theorem 4.1 sanity: the distributed RST must undercut what its
        # own schedule would cost with naive walks (sum of k·ℓ per phase).
        res = random_spanning_tree(torus_graph(8, 8), seed=7)
        naive_equivalent = sum(p.walks * p.length for p in res.phases)
        assert res.rounds < naive_equivalent / 2
