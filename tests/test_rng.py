"""Tests for repro.util.rng — deterministic derivation and independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import derive_rng, key_to_entropy, make_rng, spawn_rngs


class TestKeyToEntropy:
    def test_int_keys_are_masked_to_64_bits(self):
        assert key_to_entropy(5) == 5
        assert key_to_entropy(2**64 + 7) == 7

    def test_string_keys_are_stable(self):
        assert key_to_entropy("phase1") == key_to_entropy("phase1")

    def test_distinct_strings_differ(self):
        assert key_to_entropy("phase1") != key_to_entropy("phase2")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            key_to_entropy(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            key_to_entropy(1.5)  # type: ignore[arg-type]


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_reproducible(self):
        a = derive_rng(7, "walks", 3).random(5)
        b = derive_rng(7, "walks", 3).random(5)
        assert np.array_equal(a, b)

    def test_key_path_matters(self):
        a = derive_rng(7, "walks", 3).random(5)
        b = derive_rng(7, "walks", 4).random(5)
        c = derive_rng(7, "other", 3).random(5)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_seed_matters(self):
        a = derive_rng(7, "walks").random(5)
        b = derive_rng(8, "walks").random(5)
        assert not np.array_equal(a, b)

    def test_derived_streams_look_independent(self):
        # Correlation between two derived streams should be near zero.
        a = derive_rng(0, "a").random(20_000)
        b = derive_rng(0, "b").random(20_000)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.03


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(make_rng(3), 5)
        assert len(children) == 5

    def test_children_differ(self):
        children = spawn_rngs(make_rng(3), 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(3), -1)

    def test_zero_count(self):
        assert spawn_rngs(make_rng(3), 0) == []
