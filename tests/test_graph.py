"""Tests for the Graph CSR substrate, including hypothesis cross-checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import Graph, cycle_graph, path_graph
from repro.util.rng import make_rng


def triangle() -> Graph:
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_basic_counts(self):
        g = triangle()
        assert g.n == 3 and g.m == 3 and g.n_slots == 6

    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert [g.degree(v) for v in range(4)] == [3, 1, 1, 1]

    def test_self_loop_single_slot(self):
        g = Graph(2, [(0, 1), (0, 0)])
        assert g.degree(0) == 2  # one for the loop, one for the edge
        assert g.n_slots == 3

    def test_parallel_edges(self):
        g = Graph(2, [(0, 1), (0, 1)])
        assert g.degree(0) == 2
        assert list(g.neighbors(0)) == [1, 1]

    def test_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5)])

    def test_nonpositive_n(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_bad_weights_shape(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], weights=[1.0, 2.0])

    def test_nonpositive_weight(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], weights=[0.0])

    def test_repr_mentions_name(self):
        assert "triangle" in repr(Graph(3, [(0, 1)], name="triangle"))


class TestAccessors:
    def test_neighbors_sorted_content(self):
        g = triangle()
        assert g.neighbor_set(0) == {1, 2}

    def test_has_edge(self):
        g = path_graph(4)
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 3)

    def test_weighted_degree(self):
        g = Graph(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
        assert g.weighted_degree(1) == pytest.approx(5.0)
        assert g.is_weighted

    def test_uniform_weights_not_weighted(self):
        assert not triangle().is_weighted

    def test_slots_of_covers_all(self):
        g = triangle()
        all_slots = sorted(s for v in range(3) for s in g.slots_of(v))
        assert all_slots == list(range(g.n_slots))

    def test_csr_source_consistent(self):
        g = triangle()
        for v in range(3):
            for s in g.slots_of(v):
                assert g.csr_source[s] == v

    def test_reverse_slot_involution(self):
        g = triangle()
        for s in range(g.n_slots):
            r = g.reverse_slot(s)
            assert g.reverse_slot(r) == s
            assert g.csr_source[s] == g.csr_target[r]
            assert g.csr_target[s] == g.csr_source[r]

    def test_reverse_slot_self_loop(self):
        g = Graph(2, [(0, 1), (1, 1)])
        loop_slot = next(s for s in range(g.n_slots) if g.csr_source[s] == g.csr_target[s])
        assert g.reverse_slot(loop_slot) == loop_slot

    def test_total_weight(self):
        g = Graph(2, [(0, 1)], weights=[2.5])
        assert g.total_weight() == pytest.approx(2.5)


class TestWalkStepping:
    def test_random_neighbor_valid(self):
        g = triangle()
        rng = make_rng(0)
        for _ in range(50):
            assert g.random_neighbor(0, rng) in {1, 2}

    def test_isolated_node_raises(self):
        g = Graph(2, [(1, 1)])
        with pytest.raises(GraphError):
            g.random_neighbor(0, make_rng(0))

    def test_step_walks_isolated_raises(self):
        g = Graph(2, [(1, 1)])
        with pytest.raises(GraphError):
            g.step_walks(np.array([0]), make_rng(0))

    def test_step_walks_matches_adjacency(self):
        g = cycle_graph(10)
        rng = make_rng(1)
        pos = np.arange(10)
        nxt = g.step_walks(pos, rng)
        for a, b in zip(pos, nxt):
            assert g.has_edge(int(a), int(b))

    def test_unweighted_step_uniform(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        rng = make_rng(2)
        pos = np.zeros(30_000, dtype=np.int64)
        nxt = g.step_walks(pos, rng)
        freqs = np.bincount(nxt, minlength=4)[1:] / 30_000
        assert np.all(np.abs(freqs - 1 / 3) < 0.02)

    def test_weighted_step_proportional(self):
        g = Graph(3, [(0, 1), (0, 2)], weights=[1.0, 3.0])
        rng = make_rng(3)
        pos = np.zeros(40_000, dtype=np.int64)
        nxt = g.step_walks(pos, rng)
        frac_to_2 = float((nxt == 2).mean())
        assert abs(frac_to_2 - 0.75) < 0.02

    def test_weighted_single_step_proportional(self):
        g = Graph(3, [(0, 1), (0, 2)], weights=[1.0, 3.0])
        rng = make_rng(4)
        hits = sum(g.random_neighbor(0, rng) == 2 for _ in range(20_000))
        assert abs(hits / 20_000 - 0.75) < 0.02

    def test_walk_length_and_validity(self):
        g = cycle_graph(8)
        walk = g.walk(0, 25, make_rng(5))
        assert len(walk) == 26 and walk[0] == 0
        for a, b in zip(walk, walk[1:]):
            assert g.has_edge(a, b)

    def test_walk_negative_length(self):
        with pytest.raises(GraphError):
            triangle().walk(0, -1, make_rng(0))

    def test_walk_zero_length(self):
        assert triangle().walk(1, 0, make_rng(0)) == [1]


class TestSpanningTreeCheck:
    def test_valid_tree(self):
        g = triangle()
        assert g.subgraph_is_spanning_tree([(0, 1), (1, 2)])

    def test_cycle_rejected(self):
        g = triangle()
        assert not g.subgraph_is_spanning_tree([(0, 1), (1, 2), (0, 2)])

    def test_wrong_count_rejected(self):
        assert not triangle().subgraph_is_spanning_tree([(0, 1)])

    def test_non_edges_rejected(self):
        g = path_graph(4)
        assert not g.subgraph_is_spanning_tree([(0, 1), (1, 2), (0, 3)])


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    # Always include a spanning path so the graph is connected.
    base = [(i, i + 1) for i in range(n - 1)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=12))
    return n, base + extra


class TestHypothesisCrossChecks:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, data):
        n, edges = data
        g = Graph(n, edges)
        loops = sum(1 for u, v in edges if u == v)
        assert int(g.degrees.sum()) == 2 * (g.m - loops) + loops

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_degrees(self, data):
        import networkx as nx

        n, edges = data
        g = Graph(n, edges)
        h = nx.MultiGraph()
        h.add_nodes_from(range(n))
        h.add_edges_from(edges)
        for v in range(n):
            # networkx counts self-loops twice in MultiGraph degree.
            loops = sum(1 for a, b in edges if a == b and a == v)
            assert g.degree(v) == h.degree(v) - loops

    @given(random_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_steps_stay_on_edges(self, data, seed):
        n, edges = data
        g = Graph(n, edges)
        rng = make_rng(seed)
        pos = np.arange(n, dtype=np.int64)
        for _ in range(3):
            slots = g.step_walk_slots(pos, rng)
            assert np.array_equal(g.csr_source[slots], pos)
            pos = g.csr_target[slots]
