"""Tests for visit/connector instrumentation (Lemmas 2.6 & 2.7 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graphs import cycle_graph, path_graph, torus_graph
from repro.util.rng import make_rng
from repro.walks import (
    connector_stats,
    lemma_2_6_bound,
    max_visit_ratio,
    single_random_walk,
    visit_counts,
)


class TestVisitCounts:
    def test_basic_counting(self):
        counts = visit_counts(np.array([0, 1, 0, 2, 0]), 4)
        assert list(counts) == [3, 1, 1, 0]

    def test_empty_raises(self):
        with pytest.raises(WalkError):
            visit_counts(np.array([]), 3)


class TestLemma26:
    def test_bound_formula(self):
        assert lemma_2_6_bound(2, 100, 64) == pytest.approx(
            24 * 2 * math.sqrt(101) * math.log(64) + 1
        )

    def test_bound_validation(self):
        with pytest.raises(WalkError):
            lemma_2_6_bound(0, 10, 8)

    def test_visits_within_bound_on_families(self):
        # Empirical Lemma 2.6: max visits <= 24 d(y) sqrt(ℓ+1) log n.
        for factory, length in [
            (lambda: cycle_graph(32), 900),
            (lambda: torus_graph(5, 5), 900),
            (lambda: path_graph(24), 900),
        ]:
            g = factory()
            rng = make_rng(11)
            trajectory = np.asarray(g.walk(0, length, rng))
            counts = visit_counts(trajectory, g.n)
            for y in range(g.n):
                assert counts[y] <= lemma_2_6_bound(g.degree(y), length, g.n)

    def test_ratio_tight_on_path(self):
        # The paper notes the d(x)√ℓ bound is tight on the line: a walk of
        # length ~n² visits the origin ~√ℓ times, so the normalized ratio
        # is Θ(1) — it must not vanish.
        g = path_graph(20)
        rng = make_rng(5)
        trajs = [np.asarray(g.walk(0, 400, rng)) for _ in range(4)]
        ratio, _node = max_visit_ratio(g, trajs)
        assert ratio > 0.4

    def test_ratio_small_on_expander_like(self):
        g = torus_graph(6, 6)
        rng = make_rng(6)
        trajs = [np.asarray(g.walk(0, 400, rng)) for _ in range(4)]
        ratio, _ = max_visit_ratio(g, trajs)
        assert ratio < 1.5

    def test_max_visit_ratio_validation(self):
        g = path_graph(4)
        with pytest.raises(WalkError):
            max_visit_ratio(g, [])
        with pytest.raises(WalkError):
            max_visit_ratio(g, [np.array([0, 1]), np.array([0, 1, 2])])


class TestConnectorStats:
    def test_counts_connectors(self):
        g = torus_graph(5, 5)
        res = single_random_walk(g, 0, 400, seed=3)
        stats = connector_stats(g, res.positions, res.connectors, res.lam)
        assert stats.total_connectors == len(res.connectors)
        # Every connector must actually appear in the walk.
        for node, c in stats.connector_counts.items():
            assert stats.visit_totals[node] >= 1
            assert c >= 1

    def test_lemma_2_7_ratio_bounded(self):
        # Connector appearances stay within (log n)^2 · t/λ.
        g = torus_graph(6, 6)
        worst = 0.0
        for seed in range(6):
            res = single_random_walk(g, 0, 600, seed=seed)
            stats = connector_stats(g, res.positions, res.connectors, res.lam)
            worst = max(worst, stats.worst_ratio)
        bound = math.log(g.n) ** 2
        assert worst <= max(bound, 4.0) * 4  # generous constant, catches blowups

    def test_validation(self):
        g = path_graph(4)
        with pytest.raises(WalkError):
            connector_stats(g, np.array([0, 1]), [0], 0)
