"""Tests for Metropolis–Hastings walks (the PODC'09 generality extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WalkError
from repro.graphs import cycle_graph, path_graph, star_graph, torus_graph
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks import (
    metropolis_transition_matrix,
    metropolis_walk,
    naive_metropolis_walk,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        g = star_graph(8)
        p = metropolis_transition_matrix(g)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_uniform_target_is_stationary(self):
        # MH with uniform target: uniform distribution must be invariant.
        g = star_graph(8)  # heavily skewed degrees
        p = metropolis_transition_matrix(g)
        uniform = np.full(g.n, 1 / g.n)
        assert np.allclose(uniform @ p, uniform, atol=1e-12)

    def test_custom_target_is_stationary(self):
        g = torus_graph(4, 4)
        rng = make_rng(0)
        target = rng.random(g.n) + 0.5
        target /= target.sum()
        p = metropolis_transition_matrix(g, target)
        assert np.allclose(target @ p, target, atol=1e-12)

    def test_detailed_balance(self):
        g = cycle_graph(6)
        target = np.array([1, 2, 3, 1, 2, 3], dtype=float)
        target /= target.sum()
        p = metropolis_transition_matrix(g, target)
        for u in range(6):
            for v in range(6):
                assert target[u] * p[u, v] == pytest.approx(target[v] * p[v, u], abs=1e-12)

    def test_bad_target_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(WalkError):
            metropolis_transition_matrix(g, np.zeros(g.n))
        with pytest.raises(WalkError):
            metropolis_transition_matrix(g, np.ones(3))


class TestWalk:
    def test_trajectory_valid(self):
        g = torus_graph(4, 4)
        path = metropolis_walk(g, 0, 50, 1)
        assert len(path) == 51
        for a, b in zip(path, path[1:]):
            assert a == b or g.has_edge(a, b)

    def test_matches_matrix_law(self):
        g = path_graph(5)
        t = 6
        p = metropolis_transition_matrix(g)
        dist = np.linalg.matrix_power(p, t)[0]
        endpoints = [metropolis_walk(g, 0, t, 100 + i)[-1] for i in range(2000)]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_negative_length(self):
        with pytest.raises(WalkError):
            metropolis_walk(cycle_graph(5), 0, -1, 0)


class TestDistributedWrapper:
    def test_rounds_are_setup_plus_moves(self):
        g = star_graph(10)
        res = naive_metropolis_walk(g, 0, 80, seed=2)
        positions = res.positions
        moves = sum(1 for a, b in zip(positions[:-1], positions[1:]) if a != b)
        assert res.rounds == 1 + moves  # one setup round + one per move
        assert res.mode == "metropolis-naive"

    def test_rejections_cost_nothing(self):
        # On a star with uniform target, leaf -> hub moves are accepted
        # with probability 1/(n-1): most steps are rejections (self-loops),
        # so rounds must be far below ℓ.
        g = star_graph(20)
        res = naive_metropolis_walk(g, 1, 400, seed=3)
        assert res.rounds < 250

    def test_validation(self):
        with pytest.raises(WalkError):
            naive_metropolis_walk(cycle_graph(5), 0, 0, seed=0)
