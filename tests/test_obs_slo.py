"""Streaming SLO monitor (PR 10): windowed digests, burn-rate rules.

Everything here is clocked in simulated ticks/rounds, so the pinned
properties are exact, not statistical:

* **digest determinism** — the fixed-bucket :class:`LatencyDigest` and
  :class:`SlidingWindow` aggregates replay bit-identically for equal
  inputs (including a seeded random stream fed twice);
* **burn-rate semantics** — ``burn = bad_fraction / objective``,
  edge-triggered: one ``fire`` on crossing, one ``resolve`` on draining,
  nothing in between, with the cold-start ``min_events`` guard;
* **spec surface** — :meth:`SloSpec.parse` round-trips the CLI grammar
  and every validation error is a crisp ``ValueError``;
* **probe integration** — ``slo_record``/``slo_tick`` fan transitions
  into the tracer instant stream and ``repro_slo_alerts_total``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.congest import Network
from repro.graphs import torus_graph
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    LatencyDigest,
    MetricsRegistry,
    Probe,
    SlidingWindow,
    SloMonitor,
    SloSpec,
    Tracer,
    format_dashboard,
)
from repro.obs.slo import ALL_TENANTS


# ----------------------------------------------------------------------
# LatencyDigest: deterministic fixed-bucket percentiles
# ----------------------------------------------------------------------
class TestLatencyDigest:
    def test_percentile_is_smallest_covering_edge(self):
        digest = LatencyDigest()
        for value in (1, 2, 3, 100, 5000):
            digest.note(value)
        # Ranks: ceil(q*5) over cumulative bucket counts.
        assert digest.percentile(0.2) == 1
        assert digest.percentile(0.5) == 4  # 3 lands in the (2, 4] bucket
        assert digest.percentile(0.8) == 128
        assert digest.percentile(1.0) == 8192

    def test_overflow_bucket_reads_as_inf(self):
        digest = LatencyDigest()
        digest.note(10**9)
        assert math.isinf(digest.percentile(0.5))

    def test_count_above_is_exact_on_bucket_edges(self):
        digest = LatencyDigest()
        for value in (256, 512, 513, 1024, 2048):
            digest.note(value)
        # Threshold on an edge: counts every bucket strictly beyond it.
        assert digest.count_above(512) == 3
        assert digest.count_above(2048) == 0

    def test_empty_digest_and_bad_quantile(self):
        digest = LatencyDigest()
        assert digest.percentile(0.99) == 0.0
        with pytest.raises(ValueError):
            digest.percentile(0.0)

    def test_absorb_requires_identical_edges(self):
        digest = LatencyDigest()
        other = LatencyDigest(buckets=(1, 2, 4))
        with pytest.raises(ValueError):
            digest.absorb(other)

    def test_same_inputs_same_digest(self):
        rng = np.random.default_rng(42)
        values = rng.integers(1, 70_000, size=500)
        a, b = LatencyDigest(), LatencyDigest()
        for v in values:
            a.note(int(v))
            b.note(int(v))
        assert a.counts == b.counts
        for q in (0.5, 0.9, 0.95, 0.99):
            assert a.percentile(q) == b.percentile(q)


# ----------------------------------------------------------------------
# SlidingWindow: tick frames, suffix aggregates
# ----------------------------------------------------------------------
class TestSlidingWindow:
    def test_window_evicts_beyond_capacity(self):
        win = SlidingWindow(3)
        for tick in range(5):
            win.note("complete", 100 * (tick + 1))
            win.roll(tick)
        totals = win.totals()
        # Only ticks 2, 3, 4 survive.
        assert totals.ticks == 3
        assert totals.completed == 3
        assert win.percentile(1.0) == 512  # max surviving latency 500 → edge 512

    def test_suffix_aggregation(self):
        win = SlidingWindow(8)
        for tick in range(4):
            win.note("admit")
            if tick >= 2:
                win.note("reject")
            win.roll(tick)
        assert win.totals().admitted == 4
        assert win.totals(last=2).rejected == 2
        assert win.totals(last=1).admitted == 1

    def test_roll_without_events_closes_empty_frame(self):
        win = SlidingWindow(4)
        frame = win.roll(7)
        assert frame.tick == 7
        assert win.totals().completed == 0

    def test_determinism_over_seeded_stream(self):
        def feed(window: SlidingWindow, seed: int) -> None:
            rng = np.random.default_rng(seed)
            for tick in range(20):
                for _ in range(int(rng.integers(1, 9))):
                    window.note("complete", int(rng.integers(1, 5_000)))
                window.roll(tick)

        a, b = SlidingWindow(8), SlidingWindow(8)
        feed(a, 1234)
        feed(b, 1234)
        for q in (0.5, 0.95):
            assert a.percentile(q) == b.percentile(q)
        assert a.totals().counts == b.totals().counts

    def test_window_must_hold_a_tick(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


# ----------------------------------------------------------------------
# SloSpec: declaration + CLI grammar
# ----------------------------------------------------------------------
class TestSloSpec:
    def test_parse_round_trip(self):
        spec = SloSpec.parse(
            "name=lat-pro,metric=latency,target=2000,objective=0.05,"
            "window=8,burn=2,tenant=pro,min_events=4"
        )
        assert spec == SloSpec(
            name="lat-pro",
            metric="latency",
            latency_target=2000,
            objective=0.05,
            window=8,
            burn_threshold=2.0,
            tenant="pro",
            min_events=4,
        )

    @pytest.mark.parametrize(
        "text, needle",
        [
            ("metric=latency,target=10", "needs a name"),
            ("name=x,metric=throughput", "unknown SLO metric"),
            ("name=x,metric=reject,objective=0", "objective"),
            ("name=x,metric=reject,window=0", "window"),
            ("name=x,metric=reject,burn=0", "burn_threshold"),
            ("name=x,metric=latency", "latency_target"),
            ("name=x,bogus=1", "unknown SLO spec field"),
            ("name=x,metric", "not key=value"),
        ],
    )
    def test_validation_errors(self, text, needle):
        with pytest.raises(ValueError, match=needle):
            SloSpec.parse(text)

    def test_duplicate_rule_names_rejected(self):
        spec = SloSpec(name="dup", metric="reject")
        with pytest.raises(ValueError, match="duplicate"):
            SloMonitor(specs=[spec, spec])


# ----------------------------------------------------------------------
# Burn-rate evaluation: edge-triggered fire/resolve
# ----------------------------------------------------------------------
class TestBurnRate:
    @staticmethod
    def monitor(**overrides) -> SloMonitor:
        fields = dict(
            name="lat",
            metric="latency",
            latency_target=1000,
            objective=0.25,
            window=4,
            burn_threshold=1.0,
            tenant="pro",
        )
        fields.update(overrides)
        return SloMonitor(specs=[SloSpec(**fields)])

    def test_fire_then_resolve_once_each(self):
        mon = self.monitor()
        # Two bad ticks: every completion breaches the 1000-round target.
        for tick in (0, 1):
            mon.record("complete", "pro", 4000)
            assert [a.kind for a in mon.close_tick(tick, round_now=100 * tick)] == (
                ["fire"] if tick == 0 else []
            )
        assert mon.status("pro") == "firing"
        assert mon.firing() == ["lat"]
        # Good ticks push the bad window out; resolve exactly once.
        transitions = []
        for tick in (2, 3, 4, 5):
            mon.record("complete", "pro", 10)
            transitions.extend(mon.close_tick(tick, round_now=1_000 + tick))
        assert [a.kind for a in transitions] == ["resolve"]
        assert mon.status("pro") == "ok"
        assert [a.kind for a in mon.alerts] == ["fire", "resolve"]
        fire = mon.alerts[0]
        assert fire.spec == "lat" and fire.tenant == "pro"
        assert fire.burn == pytest.approx(1.0 / 0.25)

    def test_min_events_cold_start_guard(self):
        mon = self.monitor(min_events=5)
        mon.record("complete", "pro", 4000)
        assert mon.close_tick(0, round_now=10) == []
        assert mon.status("pro") == "ok"

    def test_tenantless_spec_watches_the_aggregate(self):
        mon = self.monitor(tenant=None, objective=0.5)
        mon.record("complete", "free", 4000)
        mon.record("complete", "pro", 4000)
        alerts = mon.close_tick(0, round_now=1)
        assert [a.tenant for a in alerts] == [ALL_TENANTS]

    def test_reject_metric_uses_admission_denominator(self):
        mon = SloMonitor(
            specs=[SloSpec(name="rej", metric="reject", objective=0.5, window=2)]
        )
        mon.record("admit", "pro")
        mon.record("reject", "pro")
        (alert,) = mon.close_tick(0, round_now=1)
        assert alert.bad == 1 and alert.total == 2
        assert alert.burn == pytest.approx(1.0)

    def test_summary_schema(self):
        mon = self.monitor()
        mon.record("complete", "pro", 4000)
        mon.close_tick(0, round_now=9, queue_depth=3)
        summary = mon.summary()
        assert summary["schema"] == "slo_monitor/v1"
        assert summary["ticks"] == 1
        assert summary["last_queue_depth"] == 3
        assert summary["rules"]["lat"]["firing"] is True
        assert summary["tenants"]["pro"]["status"] == "firing"
        assert summary["alerts"][0]["kind"] == "fire"

    def test_determinism_identical_summaries(self):
        def drive(mon: SloMonitor, seed: int) -> None:
            rng = np.random.default_rng(seed)
            for tick in range(12):
                for _ in range(int(rng.integers(0, 6))):
                    mon.record("complete", "pro", int(rng.integers(1, 3_000)))
                mon.close_tick(tick, round_now=50 * tick, queue_depth=tick % 3)

        a, b = self.monitor(), self.monitor()
        drive(a, 77)
        drive(b, 77)
        assert a.summary() == b.summary()


# ----------------------------------------------------------------------
# Probe integration + dashboard rendering
# ----------------------------------------------------------------------
class TestProbeAndDashboard:
    def test_slo_tick_emits_instants_and_counter(self):
        net = Network(torus_graph(4, 4), seed=0)
        tracer, metrics = Tracer(), MetricsRegistry()
        slo = SloMonitor(
            specs=[SloSpec(name="lat", metric="latency", latency_target=100, objective=0.1)]
        )
        probe = Probe(tracer=tracer, metrics=metrics, slo=slo)
        net.ledger.observer = probe
        probe.attached(net.ledger)
        probe.slo_record("complete", "pro", 5_000)
        transitions = probe.slo_tick(1, net.rounds, queue_depth=2, ledger=net.ledger)
        assert [a.kind for a in transitions] == ["fire"]
        fire_events = [s for s in tracer.spans if s.name == "slo-fire"]
        assert len(fire_events) == 1
        assert fire_events[0].args["slo"] == "lat"
        counter = metrics.get("repro_slo_alerts_total")
        assert counter.value(kind="fire") == 1

    def test_probe_without_slo_is_a_noop(self):
        probe = Probe()
        probe.slo_record("complete", "pro", 10)
        assert probe.slo_tick(1, 0) == []

    def test_dashboard_renders_rows_and_alerts(self):
        mon = SloMonitor(
            specs=[SloSpec(name="lat", metric="latency", latency_target=100,
                           objective=0.1, tenant="pro")]
        )
        mon.record("complete", "pro", 5_000)
        (alert,) = mon.close_tick(3, round_now=777, queue_depth=1)
        rows = [
            {
                "tenant": "pro",
                "p50": mon.percentile("pro", 0.5),
                "p95": mon.percentile("pro", 0.95),
                "attributed": 1234,
                "quota_debt": 0,
                "status": mon.status("pro"),
                "burn": 10.0,
            },
            {"tenant": "free", "p50": 0, "p95": 0, "attributed": 0,
             "quota_debt": 7, "status": "ok", "burn": 0.0},
        ]
        frame = format_dashboard(
            tick=3, round_now=777, queue_depth=1, rows=rows,
            alerts=[alert], color=False,
        )
        assert "tick    3" in frame
        assert "FIRING" in frame and "ok" in frame
        assert "⚠ fire lat [pro]" in frame
        assert "8192" in frame  # the 5000-round completion's bucket edge
        assert "\x1b[" not in frame  # color=False renders plain text
        colored = format_dashboard(
            tick=3, round_now=777, queue_depth=1, rows=rows, color=True
        )
        assert "\x1b[31m" in colored  # FIRING badge painted red


# ----------------------------------------------------------------------
# Default buckets sanity
# ----------------------------------------------------------------------
def test_default_buckets_are_powers_of_two():
    assert DEFAULT_LATENCY_BUCKETS == tuple(2**i for i in range(17))
