"""Tests for fault injection and the loss-tolerant walk (§5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    FaultSchedule,
    FaultStep,
    FaultyNetwork,
    LossyNetwork,
    OmissionWindow,
    Protocol,
    ReliableTokenWalkProtocol,
    reliable_walk,
)
from repro.congest.faults import _live_graph_connected
from repro.congest.faults import reliable_walk as reliable_walk_fn
from repro.errors import ProtocolError
from repro.graphs import cycle_graph, path_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit


class TestLossyNetwork:
    def test_zero_loss_is_plain_network(self):
        g = path_graph(6)
        lossy = LossyNetwork(g, drop_probability=0.0, seed=1)
        proto = ReliableTokenWalkProtocol(0, 5)
        rounds = lossy.run(proto)
        assert lossy.messages_dropped == 0
        # 5 hops + 5 acks interleaved: token arrives hop r, ack hop r+1.
        assert proto.destination is not None
        assert proto.retransmissions == 0
        assert rounds >= 5

    def test_drop_rate_roughly_respected(self):
        g = torus_graph(5, 5)
        lossy = LossyNetwork(g, drop_probability=0.4, seed=2, fault_seed=3)
        proto = ReliableTokenWalkProtocol(0, 120)
        lossy.run(proto, max_rounds=100_000)
        total = lossy.messages_sent
        observed_rate = lossy.messages_dropped / total
        assert 0.25 < observed_rate < 0.55

    def test_invalid_probability(self):
        with pytest.raises(ProtocolError):
            LossyNetwork(path_graph(3), drop_probability=1.0)
        with pytest.raises(ProtocolError):
            LossyNetwork(path_graph(3), drop_probability=-0.1)


class TestReliableWalk:
    @pytest.mark.parametrize("p", [0.0, 0.15, 0.4])
    def test_completes_under_loss(self, p):
        g = torus_graph(5, 5)
        proto, net = reliable_walk(g, 0, 80, drop_probability=p, seed=4, fault_seed=5)
        assert proto.destination is not None
        assert len(proto.trajectory) == 81
        for a, b in zip(proto.trajectory, proto.trajectory[1:]):
            assert g.has_edge(a, b)

    def test_loss_costs_rounds_not_correctness(self):
        g = cycle_graph(12)
        clean_proto, clean_net = reliable_walk(g, 0, 60, drop_probability=0.0, seed=6, fault_seed=7)
        lossy_proto, lossy_net = reliable_walk(g, 0, 60, drop_probability=0.4, seed=6, fault_seed=7)
        assert lossy_net.rounds > clean_net.rounds
        assert lossy_proto.retransmissions > 0
        assert clean_proto.retransmissions == 0

    def test_endpoint_law_unbiased_by_loss(self):
        # Retransmitting the SAME sampled hop keeps the walk law exact even
        # at heavy loss; this is the key design invariant.
        g = cycle_graph(6)
        length = 9
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = []
        for i in range(500):
            proto, _net = reliable_walk(
                g, 0, length, drop_probability=0.3, seed=100 + i, fault_seed=900 + i
            )
            endpoints.append(proto.destination)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_round_inflation_scales_with_loss(self):
        g = torus_graph(5, 5)
        rounds_at = {}
        for p in (0.0, 0.3):
            total = 0
            for i in range(5):
                _proto, net = reliable_walk(
                    g, 0, 100, drop_probability=p, seed=10 + i, fault_seed=20 + i
                )
                total += net.rounds
            rounds_at[p] = total / 5
        # Heavier loss costs materially more rounds, but by a constant
        # factor (≈ 1/(1-p)^2 per hop), not a blowup.
        assert 1.2 < rounds_at[0.3] / rounds_at[0.0] < 6.0

    def test_bad_timeout(self):
        with pytest.raises(ProtocolError):
            ReliableTokenWalkProtocol(0, 5, timeout=0)

    def test_wrapper_validates_completion(self):
        g = path_graph(4)
        proto, _ = reliable_walk_fn(g, 0, 6, drop_probability=0.2, seed=1, fault_seed=2)
        assert proto.destination is not None


class TestReliableWalkDeterminism:
    def test_same_seeds_same_run(self):
        # Full replay determinism: same (seed, fault_seed) reproduces the
        # trajectory, the loss pattern, the retransmission count, and the
        # round total bit-for-bit.
        g = torus_graph(5, 5)
        runs = [
            reliable_walk(g, 3, 90, drop_probability=0.3, seed=41, fault_seed=42)
            for _ in range(2)
        ]
        (proto_a, net_a), (proto_b, net_b) = runs
        assert proto_a.trajectory == proto_b.trajectory
        assert proto_a.retransmissions == proto_b.retransmissions
        assert proto_a.retransmissions > 0
        assert net_a.rounds == net_b.rounds
        assert net_a.messages_dropped == net_b.messages_dropped

    def test_fault_seed_changes_losses_not_law(self):
        # The walk rng and the drop rng are separate streams, and each hop
        # is sampled exactly once — so varying only fault_seed perturbs
        # which frames drop (rounds, retransmissions) while the sampled
        # trajectory stays identical.
        g = torus_graph(5, 5)
        proto_a, net_a = reliable_walk(g, 0, 80, drop_probability=0.35, seed=7, fault_seed=1)
        proto_b, net_b = reliable_walk(g, 0, 80, drop_probability=0.35, seed=7, fault_seed=2)
        assert proto_a.trajectory == proto_b.trajectory
        assert (net_a.messages_dropped, net_a.rounds) != (net_b.messages_dropped, net_b.rounds)


class TestFaultStepAndSchedule:
    def test_step_validation(self):
        with pytest.raises(ProtocolError):
            FaultStep(at_round=-1, crash=(0,))
        with pytest.raises(ProtocolError):
            FaultStep(at_round=0, crash=(1,), recover=(1,))
        with pytest.raises(ProtocolError):
            FaultStep(at_round=0)

    def test_schedule_validation(self):
        with pytest.raises(ProtocolError):  # recovering a node never crashed
            FaultSchedule(steps=(FaultStep(at_round=5, recover=(2,)),))
        with pytest.raises(ProtocolError):  # crashing a crashed node again
            FaultSchedule(
                steps=(
                    FaultStep(at_round=1, crash=(2,)),
                    FaultStep(at_round=3, crash=(2,)),
                )
            )

    def test_steps_sorted_and_counted(self):
        sched = FaultSchedule(
            steps=(
                FaultStep(at_round=9, recover=(4,)),
                FaultStep(at_round=2, crash=(4,)),
            )
        )
        assert [s.at_round for s in sched.steps] == [2, 9]
        assert sched.num_crashes == 1
        assert sched.num_recoveries == 1
        assert not sched.is_empty

    def test_recovery_pending_cursor(self):
        sched = FaultSchedule(
            steps=(
                FaultStep(at_round=1, crash=(3,)),
                FaultStep(at_round=5, recover=(3,)),
            )
        )
        assert sched.recovery_pending(3)
        assert sched.recovery_pending(3, after_index=1)
        assert not sched.recovery_pending(3, after_index=2)
        assert not sched.recovery_pending(0)

    def test_omission_window(self):
        w = OmissionWindow(u=1, v=2, start_round=10, end_round=20)
        sched = FaultSchedule(omissions=(w,))
        assert sched.link_omitted(2, 1, 10)
        assert not sched.link_omitted(1, 2, 20)
        assert not sched.link_omitted(1, 3, 15)
        with pytest.raises(ProtocolError):
            OmissionWindow(u=1, v=1, start_round=0, end_round=5)
        with pytest.raises(ProtocolError):
            OmissionWindow(u=1, v=2, start_round=5, end_round=5)

    def test_sample_deterministic(self):
        g = torus_graph(6, 6)
        kwargs = dict(crashes=5, start_round=10, end_round=2_000, recover_after=300, seed=11)
        a = FaultSchedule.sample(g, **kwargs)
        b = FaultSchedule.sample(g, **kwargs)
        assert a == b
        assert 0 < a.num_crashes <= 5
        assert a.num_recoveries == a.num_crashes

    def test_sample_preserves_connectivity(self):
        # Replay the schedule and check the live induced subgraph is
        # connected after every crash — the sampler's contract.  (A
        # *recovery* may rejoin a node whose neighbors are still down;
        # its owed edges return when those neighbors recover.)
        g = path_graph(8)  # every interior node is a cut vertex
        sched = FaultSchedule.sample(
            g, crashes=6, start_round=0, end_round=1_000, recover_after=200, seed=3
        )
        dead = np.zeros(g.n, dtype=bool)
        for step in sched.steps:
            dead[list(step.recover)] = False
            if step.crash:
                dead[list(step.crash)] = True
                assert _live_graph_connected(g, dead)

    def test_sample_crash_stop(self):
        g = torus_graph(4, 4)
        sched = FaultSchedule.sample(
            g, crashes=3, start_round=0, end_round=100, recover_after=None, seed=9
        )
        assert sched.num_recoveries == 0
        assert sched.num_crashes > 0


class _PingProtocol(Protocol):
    """Send one message 0 → 1 at start; record whether it arrived."""

    name = "ping"

    def __init__(self) -> None:
        self.arrived = False

    def on_start(self, api) -> None:
        api.send(0, 1, "ping")

    def on_receive(self, api, node, messages) -> None:
        if node == 1:
            self.arrived = True


class TestFaultyNetwork:
    def test_liveness_surface(self):
        net = FaultyNetwork(path_graph(4))
        assert net.is_live(2) and net.crashed_nodes == ()
        net.mark_crashed([2, 2])  # idempotent
        assert not net.is_live(2)
        assert net.crashed_nodes == (2,)
        assert net.crashes_seen == 1
        with pytest.raises(ValueError):
            net.live_mask[2] = True  # read-only view
        net.mark_recovered([2])
        net.mark_recovered([2])
        assert net.is_live(2) and net.recoveries_seen == 1

    def test_crashed_receiver_drops_silently(self):
        net = FaultyNetwork(
            path_graph(3),
            schedule=FaultSchedule(steps=(FaultStep(at_round=0, crash=(1,)),)),
        )
        proto = _PingProtocol()
        net.run(proto, max_rounds=50)
        assert not proto.arrived
        assert net.messages_lost_to_crashes == 1

    def test_live_receiver_gets_message(self):
        net = FaultyNetwork(path_graph(3))
        proto = _PingProtocol()
        net.run(proto, max_rounds=50)
        assert proto.arrived
        assert net.messages_lost_to_crashes == 0

    def test_omitting_link_drops_silently(self):
        net = FaultyNetwork(
            path_graph(3),
            schedule=FaultSchedule(
                omissions=(OmissionWindow(u=0, v=1, start_round=0, end_round=100),)
            ),
        )
        proto = _PingProtocol()
        net.run(proto, max_rounds=50)
        assert not proto.arrived
        assert net.messages_omitted == 1
