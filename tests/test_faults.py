"""Tests for fault injection and the loss-tolerant walk (§5 extension)."""

from __future__ import annotations

import pytest

from repro.congest import LossyNetwork, ReliableTokenWalkProtocol, reliable_walk
from repro.congest.faults import reliable_walk as reliable_walk_fn
from repro.errors import ProtocolError
from repro.graphs import cycle_graph, path_graph, torus_graph
from repro.markov import WalkSpectrum
from repro.util.stats import chi_square_goodness_of_fit


class TestLossyNetwork:
    def test_zero_loss_is_plain_network(self):
        g = path_graph(6)
        lossy = LossyNetwork(g, drop_probability=0.0, seed=1)
        proto = ReliableTokenWalkProtocol(0, 5)
        rounds = lossy.run(proto)
        assert lossy.messages_dropped == 0
        # 5 hops + 5 acks interleaved: token arrives hop r, ack hop r+1.
        assert proto.destination is not None
        assert proto.retransmissions == 0
        assert rounds >= 5

    def test_drop_rate_roughly_respected(self):
        g = torus_graph(5, 5)
        lossy = LossyNetwork(g, drop_probability=0.4, seed=2, fault_seed=3)
        proto = ReliableTokenWalkProtocol(0, 120)
        lossy.run(proto, max_rounds=100_000)
        total = lossy.messages_sent
        observed_rate = lossy.messages_dropped / total
        assert 0.25 < observed_rate < 0.55

    def test_invalid_probability(self):
        with pytest.raises(ProtocolError):
            LossyNetwork(path_graph(3), drop_probability=1.0)
        with pytest.raises(ProtocolError):
            LossyNetwork(path_graph(3), drop_probability=-0.1)


class TestReliableWalk:
    @pytest.mark.parametrize("p", [0.0, 0.15, 0.4])
    def test_completes_under_loss(self, p):
        g = torus_graph(5, 5)
        proto, net = reliable_walk(g, 0, 80, drop_probability=p, seed=4, fault_seed=5)
        assert proto.destination is not None
        assert len(proto.trajectory) == 81
        for a, b in zip(proto.trajectory, proto.trajectory[1:]):
            assert g.has_edge(a, b)

    def test_loss_costs_rounds_not_correctness(self):
        g = cycle_graph(12)
        clean_proto, clean_net = reliable_walk(g, 0, 60, drop_probability=0.0, seed=6, fault_seed=7)
        lossy_proto, lossy_net = reliable_walk(g, 0, 60, drop_probability=0.4, seed=6, fault_seed=7)
        assert lossy_net.rounds > clean_net.rounds
        assert lossy_proto.retransmissions > 0
        assert clean_proto.retransmissions == 0

    def test_endpoint_law_unbiased_by_loss(self):
        # Retransmitting the SAME sampled hop keeps the walk law exact even
        # at heavy loss; this is the key design invariant.
        g = cycle_graph(6)
        length = 9
        dist = WalkSpectrum(g).distribution(0, length)
        endpoints = []
        for i in range(500):
            proto, _net = reliable_walk(
                g, 0, length, drop_probability=0.3, seed=100 + i, fault_seed=900 + i
            )
            endpoints.append(proto.destination)
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_round_inflation_scales_with_loss(self):
        g = torus_graph(5, 5)
        rounds_at = {}
        for p in (0.0, 0.3):
            total = 0
            for i in range(5):
                _proto, net = reliable_walk(
                    g, 0, 100, drop_probability=p, seed=10 + i, fault_seed=20 + i
                )
                total += net.rounds
            rounds_at[p] = total / 5
        # Heavier loss costs materially more rounds, but by a constant
        # factor (≈ 1/(1-p)^2 per hop), not a blowup.
        assert 1.2 < rounds_at[0.3] / rounds_at[0.0] < 6.0

    def test_bad_timeout(self):
        with pytest.raises(ProtocolError):
            ReliableTokenWalkProtocol(0, 5, timeout=0)

    def test_wrapper_validates_completion(self):
        g = path_graph(4)
        proto, _ = reliable_walk_fn(g, 0, 6, drop_probability=0.2, seed=1, fault_seed=2)
        assert proto.destination is not None
