"""Tests for repro.util.stats — goodness-of-fit machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.stats import (
    chi_square_goodness_of_fit,
    empirical_distribution,
    sample_quantiles,
    total_variation,
    total_variation_counts,
)


class TestChiSquare:
    def test_uniform_samples_pass(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 4, 4000)
        observed = {i: int((samples == i).sum()) for i in range(4)}
        expected = {i: 0.25 for i in range(4)}
        result = chi_square_goodness_of_fit(observed, expected)
        assert not result.rejects_at(0.001)

    def test_biased_samples_fail(self):
        observed = {0: 3000, 1: 400, 2: 300, 3: 300}
        expected = {i: 0.25 for i in range(4)}
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.rejects_at(1e-6)

    def test_pools_small_expected_categories(self):
        observed = {0: 95, 1: 5, 2: 0, 3: 0}
        expected = {0: 0.95, 1: 0.03, 2: 0.01, 3: 0.01}
        result = chi_square_goodness_of_fit(observed, expected, min_expected=5)
        assert result.dof >= 1

    def test_missing_categories_counted_as_zero(self):
        observed = {0: 50, 1: 50}
        expected = {0: 0.4, 1: 0.4, 2: 0.2}
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.rejects_at(0.01)  # category 2 never observed

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit({0: 1}, {0: 0.5})

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit({9: 1}, {0: 1.0})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit({}, {0: 0.5, 1: 0.5})


class TestEmpiricalDistribution:
    def test_counts(self):
        dist = empirical_distribution(["a", "a", "b", "c"])
        assert dist == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_distribution([])


class TestTotalVariation:
    def test_identical(self):
        p = {"a": 0.5, "b": 0.5}
        assert total_variation(p, p) == 0.0

    def test_disjoint(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_half(self):
        p = {"a": 1.0}
        q = {"a": 0.5, "b": 0.5}
        assert total_variation(p, q) == pytest.approx(0.5)

    def test_counts_variant(self):
        counts = {"a": 50, "b": 50}
        q = {"a": 0.5, "b": 0.5}
        assert total_variation_counts(counts, q) == pytest.approx(0.0)

    def test_counts_empty_raises(self):
        with pytest.raises(ValueError):
            total_variation_counts({}, {"a": 1.0})


class TestQuantiles:
    def test_median(self):
        assert sample_quantiles([1, 2, 3, 4, 5], [0.5]) == [3.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sample_quantiles([], [0.5])
