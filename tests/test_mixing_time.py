"""Tests for decentralized mixing-time estimation (Theorem 4.6).

The headline guarantee is the sandwich τ^x_mix ≤ τ̃ ≤ τ^x(ε): the estimate
must not undershoot the true mixing time and must not overshoot the
stricter ε-mixing time.  We check it against exact spectral values on
families with very different mixing behaviour.
"""

from __future__ import annotations


import pytest

from repro.apps import estimate_mixing_time, power_iteration_mixing_time
from repro.errors import ConvergenceError, GraphError
from repro.graphs import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    lollipop_graph,
    random_regular_graph,
    torus_graph,
)
from repro.markov import WalkSpectrum, exact_mixing_time


MIXING_CASES = [
    ("torus5x5", lambda: torus_graph(5, 5)),
    ("complete12", lambda: complete_graph(12)),
    ("cycle15", lambda: cycle_graph(15)),
    ("barbell6", lambda: barbell_graph(6, 1)),
    ("expander", lambda: random_regular_graph(32, 4, 9)),
]


class TestSandwich:
    @pytest.mark.parametrize("name,factory", MIXING_CASES)
    def test_estimate_sandwiched(self, name, factory):
        g = factory()
        spec = WalkSpectrum(g)
        tau_mix = exact_mixing_time(g, 0, spectrum=spec)
        # Upper anchor: the l1-threshold the PASS verdict effectively
        # certifies (generous: tester threshold/4 in l1 terms).
        tau_upper = exact_mixing_time(g, 0, 0.02, spectrum=spec)
        est = estimate_mixing_time(g, 0, seed=11, samples=600)
        assert est.estimate >= max(1, tau_mix // 2), (name, est.estimate, tau_mix)
        assert est.estimate <= max(tau_upper, 2 * tau_mix, 4), (name, est.estimate, tau_upper)

    def test_slow_vs_fast_families_ordered(self):
        fast = estimate_mixing_time(complete_graph(12), 0, seed=1, samples=400).estimate
        slow = estimate_mixing_time(cycle_graph(15), 0, seed=1, samples=400).estimate
        assert slow > fast


class TestMechanics:
    def test_probe_history_recorded(self):
        g = torus_graph(5, 5)
        est = estimate_mixing_time(g, 0, seed=2, samples=300)
        assert len(est.probes) >= 2
        assert est.probes[0].length == 1
        # Doubling prefix then binary search: lengths start powers of two.
        assert est.probes[1].length == 2

    def test_rounds_accumulate(self):
        g = torus_graph(5, 5)
        est = estimate_mixing_time(g, 0, seed=3, samples=300)
        assert est.rounds >= sum(p.rounds for p in est.probes)

    def test_bipartite_rejected(self):
        with pytest.raises(GraphError):
            estimate_mixing_time(cycle_graph(8), 0, seed=0)

    def test_bad_source(self):
        with pytest.raises(GraphError):
            estimate_mixing_time(torus_graph(5, 5), 99, seed=0)

    def test_max_length_guard(self):
        with pytest.raises(ConvergenceError):
            estimate_mixing_time(cycle_graph(25), 0, seed=4, samples=300, max_length=4)

    def test_spectral_estimates_from_result(self):
        g = torus_graph(5, 5)
        est = estimate_mixing_time(g, 0, seed=5, samples=400)
        from repro.markov import spectral_gap

        gap_interval = est.spectral_gap_bounds(g.n)
        assert gap_interval.contains(spectral_gap(g), slack=4.0)
        cond_interval = est.conductance_bounds(g.n)
        assert cond_interval.lower < cond_interval.upper


class TestPowerIterationBaseline:
    @pytest.mark.parametrize("name,factory", MIXING_CASES[:4])
    def test_baseline_matches_exact_up_to_doubling(self, name, factory):
        g = factory()
        tau = exact_mixing_time(g, 0)
        est, rounds = power_iteration_mixing_time(g, 0)
        # The baseline checks at powers of two: off by at most 2x.
        assert max(1, tau) <= est <= max(2 * tau, 2)
        assert rounds >= est  # one round per step, plus check sweeps

    def test_baseline_bipartite_rejected(self):
        with pytest.raises(GraphError):
            power_iteration_mixing_time(cycle_graph(8), 0)

    def test_baseline_budget(self):
        with pytest.raises(ConvergenceError):
            power_iteration_mixing_time(lollipop_graph(8, 8), 0, max_steps=3)
