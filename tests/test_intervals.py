"""Tests for repro.util.intervals, including hypothesis invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import (
    IntervalSet,
    intervals_mergeable,
    merge_intervals,
    normalize,
)


class TestMergeable:
    def test_overlap(self):
        assert intervals_mergeable((1, 5), (3, 8))

    def test_touching(self):
        assert intervals_mergeable((1, 3), (4, 6))
        assert intervals_mergeable((4, 6), (1, 3))

    def test_disjoint(self):
        assert not intervals_mergeable((1, 3), (5, 8))

    def test_contained(self):
        assert intervals_mergeable((1, 10), (3, 4))


class TestMerge:
    def test_union(self):
        assert merge_intervals((1, 5), (3, 8)) == (1, 8)

    def test_touching_union(self):
        assert merge_intervals((1, 3), (4, 6)) == (1, 6)

    def test_disjoint_raises(self):
        with pytest.raises(ValueError):
            merge_intervals((1, 2), (5, 6))


class TestNormalize:
    def test_collapses_chain(self):
        assert normalize([(5, 6), (1, 2), (3, 4)]) == [(1, 6)]

    def test_keeps_gaps(self):
        # (1,2) and (4,5) are separated by the uncovered point 3.
        assert normalize([(1, 2), (4, 5), (9, 9)]) == [(1, 2), (4, 5), (9, 9)]
        # but (1,3) and (4,5) touch, so they merge.
        assert normalize([(1, 3), (4, 5), (9, 9)]) == [(1, 5), (9, 9)]

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            normalize([(5, 3)])

    def test_empty(self):
        assert normalize([]) == []


class TestIntervalSet:
    def test_add_reports_change(self):
        s = IntervalSet([(1, 3)])
        assert s.add((10, 12)) is True
        assert s.add((2, 3)) is False  # already covered

    def test_covers(self):
        s = IntervalSet([(1, 5), (8, 9)])
        assert s.covers((2, 4))
        assert not s.covers((4, 8))

    def test_covers_point_and_contains(self):
        s = IntervalSet([(3, 5)])
        assert s.covers_point(4)
        assert 4 in s
        assert 6 not in s
        assert "x" not in s

    def test_largest(self):
        s = IntervalSet([(1, 2), (5, 9)])
        assert s.largest() == (5, 9)

    def test_largest_empty(self):
        assert IntervalSet().largest() is None

    def test_total_length(self):
        s = IntervalSet([(1, 3), (5, 5)])
        assert s.total_length() == 4

    def test_update(self):
        s = IntervalSet()
        assert s.update([(1, 2), (3, 4)]) is True
        assert s.as_list() == [(1, 4)]

    def test_equality(self):
        assert IntervalSet([(1, 2), (3, 4)]) == IntervalSet([(1, 4)])

    def test_add_malformed(self):
        with pytest.raises(ValueError):
            IntervalSet().add((5, 1))


@st.composite
def interval_lists(draw):
    n = draw(st.integers(0, 12))
    out = []
    for _ in range(n):
        lo = draw(st.integers(0, 50))
        hi = draw(st.integers(lo, lo + 10))
        out.append((lo, hi))
    return out


class TestIntervalSetProperties:
    @given(interval_lists())
    @settings(max_examples=120, deadline=None)
    def test_normalized_is_sorted_and_disjoint(self, intervals):
        items = IntervalSet(intervals).as_list()
        for (alo, ahi), (blo, bhi) in zip(items, items[1:]):
            assert ahi + 1 < blo  # strictly separated (else they'd merge)
            assert alo <= ahi and blo <= bhi

    @given(interval_lists())
    @settings(max_examples=120, deadline=None)
    def test_coverage_preserved(self, intervals):
        s = IntervalSet(intervals)
        points = {p for lo, hi in intervals for p in range(lo, hi + 1)}
        for p in points:
            assert s.covers_point(p)
        # Touching-merge never invents coverage: [a,b]+[b+1,c] = [a,c] adds
        # no integer outside the union, so the total is exactly preserved.
        assert s.total_length() == len(points)

    @given(interval_lists(), interval_lists())
    @settings(max_examples=80, deadline=None)
    def test_update_is_union(self, first, second):
        s = IntervalSet(first)
        s.update(second)
        t = IntervalSet(list(first) + list(second))
        assert s == t
