"""Tests for the short-walk token store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WalkError
from repro.walks import TokenRecord, WalkStore


def record(tid: int, source: int = 0, length: int = 3, destination: int = 2) -> TokenRecord:
    return TokenRecord(token_id=tid, source=source, length=length, destination=destination)


class TestTokenRecord:
    def test_path_length_validated(self):
        with pytest.raises(WalkError):
            TokenRecord(token_id=0, source=0, length=3, destination=1, path=np.array([0, 1]))

    def test_valid_path_accepted(self):
        rec = TokenRecord(
            token_id=0, source=0, length=2, destination=2, path=np.array([0, 1, 2])
        )
        assert rec.length == 2

    def test_negative_length_rejected(self):
        with pytest.raises(WalkError):
            TokenRecord(token_id=0, source=0, length=-1, destination=1)


class TestWalkStore:
    def test_add_and_count(self):
        store = WalkStore()
        store.add(record(0, source=1, destination=5))
        store.add(record(1, source=1, destination=5))
        store.add(record(2, source=1, destination=6))
        assert store.count_for_source(1) == 3
        assert store.count_for_source(9) == 0
        assert len(store.tokens_at(5, 1)) == 2
        assert store.holders_for_source(1) == {5: 2, 6: 1}

    def test_remove(self):
        store = WalkStore()
        rec = record(7, source=2, destination=3)
        store.add(rec)
        store.remove(rec)
        assert store.count_for_source(2) == 0
        assert store.tokens_at(3, 2) == []
        assert store.tokens_consumed == 1

    def test_remove_missing_raises(self):
        store = WalkStore()
        with pytest.raises(WalkError):
            store.remove(record(0))

    def test_remove_twice_raises(self):
        store = WalkStore()
        rec = record(1)
        store.add(rec)
        store.remove(rec)
        with pytest.raises(WalkError):
            store.remove(rec)

    def test_token_ids_unique(self):
        store = WalkStore()
        ids = [store.new_token_id() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_iter_all_and_len(self):
        store = WalkStore()
        for i in range(4):
            store.add(record(i, source=i % 2))
        assert len(store) == 4
        assert len(list(store.iter_all())) == 4
        assert store.total_unused() == 4

    def test_tokens_at_returns_copy(self):
        store = WalkStore()
        store.add(record(0, source=1, destination=5))
        bucket = store.tokens_at(5, 1)
        bucket.clear()
        assert store.count_for_source(1) == 1

    def test_repr(self):
        store = WalkStore()
        store.add(record(0))
        assert "unused=1" in repr(store)
