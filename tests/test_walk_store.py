"""Tests for the short-walk token store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WalkError
from repro.walks import TokenRecord, WalkStore


def record(tid: int, source: int = 0, length: int = 3, destination: int = 2) -> TokenRecord:
    return TokenRecord(token_id=tid, source=source, length=length, destination=destination)


class TestTokenRecord:
    def test_path_length_validated(self):
        with pytest.raises(WalkError):
            TokenRecord(token_id=0, source=0, length=3, destination=1, path=np.array([0, 1]))

    def test_valid_path_accepted(self):
        rec = TokenRecord(
            token_id=0, source=0, length=2, destination=2, path=np.array([0, 1, 2])
        )
        assert rec.length == 2

    def test_negative_length_rejected(self):
        with pytest.raises(WalkError):
            TokenRecord(token_id=0, source=0, length=-1, destination=1)


class TestWalkStore:
    def test_add_and_count(self):
        store = WalkStore()
        store.add(record(0, source=1, destination=5))
        store.add(record(1, source=1, destination=5))
        store.add(record(2, source=1, destination=6))
        assert store.count_for_source(1) == 3
        assert store.count_for_source(9) == 0
        assert len(store.tokens_at(5, 1)) == 2
        assert store.holders_for_source(1) == {5: 2, 6: 1}

    def test_remove(self):
        store = WalkStore()
        rec = record(7, source=2, destination=3)
        store.add(rec)
        store.remove(rec)
        assert store.count_for_source(2) == 0
        assert store.tokens_at(3, 2) == []
        assert store.tokens_consumed == 1

    def test_remove_missing_raises(self):
        store = WalkStore()
        with pytest.raises(WalkError):
            store.remove(record(0))

    def test_remove_twice_raises(self):
        store = WalkStore()
        rec = record(1)
        store.add(rec)
        store.remove(rec)
        with pytest.raises(WalkError):
            store.remove(rec)

    def test_token_ids_unique(self):
        store = WalkStore()
        ids = [store.new_token_id() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_iter_all_and_len(self):
        store = WalkStore()
        for i in range(4):
            store.add(record(i, source=i % 2))
        assert len(store) == 4
        assert len(list(store.iter_all())) == 4
        assert store.total_unused() == 4

    def test_tokens_at_returns_copy(self):
        store = WalkStore()
        store.add(record(0, source=1, destination=5))
        bucket = store.tokens_at(5, 1)
        bucket.clear()
        assert store.count_for_source(1) == 1

    def test_repr(self):
        store = WalkStore()
        store.add(record(0))
        assert "unused=1" in repr(store)


class ReferenceStore:
    """The legacy per-object bucket store, kept as the semantic oracle.

    Reimplements the pre-columnar ``WalkStore`` exactly: a dict keyed by
    ``(holder, source)`` whose values are add-ordered record lists, with
    bucket keys deleted on empty (so re-adding re-inserts at the end).
    """

    def __init__(self):
        self.buckets = {}
        self.created = 0
        self.consumed = 0

    def add(self, rec):
        self.buckets.setdefault((rec.destination, rec.source), []).append(rec)
        self.created += 1

    def remove(self, rec):
        key = (rec.destination, rec.source)
        bucket = self.buckets.get(key, [])
        for i, existing in enumerate(bucket):
            if existing.token_id == rec.token_id:
                bucket.pop(i)
                if not bucket:
                    del self.buckets[key]
                self.consumed += 1
                return
        raise WalkError("missing")

    def holders_for_source(self, source):
        return {
            holder: len(bucket)
            for (holder, src), bucket in self.buckets.items()
            if src == source and bucket
        }

    def tokens_at(self, holder, source):
        return list(self.buckets.get((holder, source), []))


class TestColumnarStore:
    def test_add_batch_assigns_sequential_ids(self):
        store = WalkStore()
        ids = store.add_batch(
            np.array([0, 0, 1]), np.array([2, 3, 2]), np.array([4, 5, 4])
        )
        assert ids.tolist() == [0, 1, 2]
        # The id counter advanced past the batch.
        assert store.new_token_id() == 3
        assert store.tokens_created == 3

    def test_add_batch_shared_path_matrix(self):
        store = WalkStore()
        paths = np.array([[0, 1, 2, 99], [1, 2, 3, 4]])
        store.add_batch(
            np.array([0, 1]), np.array([2, 3]), np.array([2, 4]), paths=paths
        )
        recs = {rec.token_id: rec for rec in store.iter_all()}
        # Materialized paths slice to exactly length + 1 entries.
        assert recs[0].path.tolist() == [0, 1, 2]
        assert recs[1].path.tolist() == [1, 2, 3, 4]

    def test_add_batch_validates(self):
        store = WalkStore()
        with pytest.raises(WalkError):
            store.add_batch(np.array([0]), np.array([-1]), np.array([1]))
        with pytest.raises(WalkError):
            store.add_batch(np.array([0, 1]), np.array([1]), np.array([1, 2]))
        with pytest.raises(WalkError):  # path matrix too narrow for max length
            store.add_batch(
                np.array([0]), np.array([3]), np.array([1]), paths=np.zeros((1, 3), dtype=np.int64)
            )

    def test_token_at_matches_tokens_at(self):
        store = WalkStore()
        store.add_batch(
            np.array([7, 7, 7]), np.array([1, 1, 1]), np.array([3, 3, 9])
        )
        bucket = store.tokens_at(3, 7)
        for i, rec in enumerate(bucket):
            assert store.token_at(3, 7, i) == rec
        with pytest.raises(WalkError):
            store.token_at(3, 7, 5)
        with pytest.raises(WalkError):
            store.token_at(4, 7, 0)

    def test_counters_consistent_under_interleaved_add_remove(self):
        """Regression: created/consumed/total_unused stay in lockstep."""
        store = WalkStore()
        rng = np.random.default_rng(99)
        live = []
        for step in range(400):
            if live and rng.random() < 0.4:
                rec = live.pop(int(rng.integers(0, len(live))))
                store.remove(rec)
            elif rng.random() < 0.3:
                ids = set(store.add_batch(
                    rng.integers(0, 5, size=3),
                    rng.integers(0, 4, size=3),
                    rng.integers(0, 6, size=3),
                ).tolist())
                live.extend(rec for rec in store.iter_all() if rec.token_id in ids)
            else:
                rec = TokenRecord(
                    token_id=store.new_token_id(),
                    source=int(rng.integers(0, 5)),
                    length=int(rng.integers(0, 4)),
                    destination=int(rng.integers(0, 6)),
                )
                store.add(rec)
                live.append(rec)
            assert store.total_unused() == len(live)
            assert store.tokens_created - store.tokens_consumed == len(live)
            assert store.tokens_created == store.tokens_consumed + sum(
                1 for _ in store.iter_all()
            )
            assert len(store) == len(live)

    def test_randomized_equivalence_with_reference_store(self):
        """Columnar store == legacy bucket store on random add/query/remove.

        Checks contents *and* iteration order of holders_for_source /
        tokens_at — the orders RNG-consuming sweeps depend on — plus the
        re-insertion rule when a bucket empties and refills.
        """
        rng = np.random.default_rng(1234)
        store, ref = WalkStore(), ReferenceStore()
        live = []
        n_sources, n_holders = 6, 8
        for step in range(600):
            action = rng.random()
            if action < 0.45 or not live:
                rec = TokenRecord(
                    token_id=store.new_token_id(),
                    source=int(rng.integers(0, n_sources)),
                    length=int(rng.integers(0, 5)),
                    destination=int(rng.integers(0, n_holders)),
                )
                store.add(rec)
                ref.add(rec)
                live.append(rec)
            elif action < 0.75:
                rec = live.pop(int(rng.integers(0, len(live))))
                store.remove(rec)
                ref.remove(rec)
            else:
                source = int(rng.integers(0, n_sources))
                got = store.holders_for_source(source)
                want = ref.holders_for_source(source)
                assert got == want
                assert list(got) == list(want)  # holder iteration order
                for holder in want:
                    got_ids = [r.token_id for r in store.tokens_at(holder, source)]
                    want_ids = [r.token_id for r in ref.tokens_at(holder, source)]
                    assert got_ids == want_ids  # bucket order
        assert store.tokens_created == ref.created
        assert store.tokens_consumed == ref.consumed

    def test_bucket_reinsertion_moves_holder_to_end(self):
        store = WalkStore()
        a = record(0, source=1, destination=5)
        b = record(1, source=1, destination=6)
        store.add(a)
        store.add(b)
        assert list(store.holders_for_source(1)) == [5, 6]
        store.remove(a)  # empties holder 5's bucket
        store.add(record(2, source=1, destination=5))
        # Holder 5 re-enters at the end, like the legacy keyed-dict store.
        assert list(store.holders_for_source(1)) == [6, 5]

    def test_grows_past_initial_capacity(self):
        store = WalkStore()
        total = 5000
        store.add_batch(
            np.zeros(total, dtype=np.int64),
            np.ones(total, dtype=np.int64),
            np.arange(total, dtype=np.int64) % 7,
        )
        assert store.total_unused() == total
        assert store.count_for_source(0) == total
        assert sum(store.holders_for_source(0).values()) == total


class TestPathMemoryReclamation:
    def test_batch_matrix_freed_when_all_tokens_consumed(self):
        store = WalkStore()
        paths = np.array([[0, 1, 9], [2, 3, 9]])
        store.add_batch(np.array([0, 0]), np.array([1, 1]), np.array([1, 3]), paths=paths)
        recs = list(store.iter_all())
        store.remove(recs[0])
        assert store._path_batches[0] is not None  # one token still live
        store.remove(recs[1])
        assert store._path_batches[0] is None  # hop matrix released

    def test_single_add_path_freed_and_not_aliased(self):
        store = WalkStore()
        path = np.array([0, 1, 2])
        rec = TokenRecord(token_id=0, source=0, length=2, destination=2, path=path)
        store.add(rec)
        path[0] = 77  # caller mutates its buffer after handing the record over
        assert store.tokens_at(2, 0)[0].path.tolist() == [0, 1, 2]
        store.remove(rec)
        assert store._path_batches[0] is None


class TestTokenRecordEquality:
    def test_fresh_materializations_compare_equal(self):
        store = WalkStore()
        paths = np.array([[0, 1, 2]])
        store.add_batch(np.array([0]), np.array([2]), np.array([2]), paths=paths)
        a = store.tokens_at(2, 0)[0]
        b = store.tokens_at(2, 0)[0]
        assert a is not b
        assert a == b
        assert a in store.tokens_at(2, 0)

    def test_differing_paths_not_equal(self):
        a = TokenRecord(token_id=0, source=0, length=1, destination=1, path=np.array([0, 1]))
        b = TokenRecord(token_id=0, source=0, length=1, destination=1, path=np.array([0, 2]))
        c = TokenRecord(token_id=0, source=0, length=1, destination=1)
        assert a != b
        assert a != c
        assert a != "not-a-record"
