"""Tests for the graph-churn subsystem (``repro.dynamic``).

The load-bearing claims of PR 5:

* **Delta application is exact bookkeeping** — ``Graph.apply_delta``
  rebuilds the CSR arrays identically to constructing a fresh graph from
  the post-delta edge list, surviving slots keep their (source, target,
  weight) identity through the remap, deletions match stored edges by
  occurrence (multigraph semantics), and absent-edge deletions raise.
* **Invalidation is exactly selective** — the vectorized path scan evicts
  precisely the pooled tokens whose recorded walk stepped from a mutated
  node (or crossed a deleted edge); every surviving token's recorded law
  is provably unchanged on the new graph.
* **The cascade leaves the session consistent** — network adjacency, BFS
  caches, shard quotas/watermarks all track the new topology, and the
  charged regeneration lands in ``"pool-refill/churn"``: on the session
  ledger, never in a request delta, and the scheduler's ledger balance
  extends to Σ attributed + maintain + churn = session delta exactly.
* **Exactness survives churn** — post-churn pooled endpoints follow the
  *new* graph's ``P^ℓ`` law (chi-square) with shared refills.
* **Admission pricing sees churn debt** — a round-budgeted churn event
  leaves deferred shards whose deficit admission control prices into
  rejections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import Network
from repro.dynamic import ChurnSpec, GraphDelta, run_churn_loop, sample_churn_delta
from repro.engine import WalkEngine
from repro.errors import GraphError, WalkError
from repro.graphs import Graph, complete_graph, is_connected, torus_graph
from repro.markov import WalkSpectrum
from repro.serve import TrafficSpec
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit
from repro.walks.store import WalkStore


def _apply(graph: Graph, *, insert=(), delete=(), weights=None) -> object:
    return graph.apply_delta(
        GraphDelta(insert_edges=list(insert), delete_edges=list(delete), insert_weights=weights)
    )


class TestGraphDelta:
    def test_validation(self):
        with pytest.raises(GraphError, match="pairs"):
            GraphDelta(insert_edges=[(1, 2, 3)])
        with pytest.raises(GraphError, match="insert_weights"):
            GraphDelta(insert_edges=[(0, 1)], insert_weights=[1.0, 2.0])
        with pytest.raises(GraphError, match="positive"):
            GraphDelta(insert_edges=[(0, 1)], insert_weights=[0.0])
        assert GraphDelta().is_empty
        assert GraphDelta(insert_edges=[(0, 1)]).num_changes == 1

    def test_apply_matches_fresh_construction(self):
        g = torus_graph(6, 6)
        delete = [g.edges()[3], g.edges()[17]]
        insert = [(0, 21), (5, 30)]
        _apply(g, insert=insert, delete=delete)
        kept = [e for i, e in enumerate(torus_graph(6, 6).edges()) if i not in (3, 17)]
        fresh = Graph(36, kept + insert)
        assert g.m == fresh.m and g.n_slots == fresh.n_slots
        assert np.array_equal(g.indptr, fresh.indptr)
        assert np.array_equal(g.csr_target, fresh.csr_target)
        assert np.array_equal(g.csr_source, fresh.csr_source)
        assert np.array_equal(g.csr_edge, fresh.csr_edge)
        assert np.array_equal(g.degrees, fresh.degrees)
        assert np.allclose(g.weighted_degrees, fresh.weighted_degrees)

    def test_slot_remap_preserves_identity(self):
        g = torus_graph(5, 5)
        old_src, old_tgt, old_w = g.csr_source.copy(), g.csr_target.copy(), g.csr_weight.copy()
        victim = g.edges()[7]
        remap = _apply(g, insert=[(0, 12)], delete=[victim])
        assert remap.old_n_slots == len(old_src)
        survived = 0
        for j, nj in enumerate(remap.slot_remap.tolist()):
            if nj < 0:
                assert {int(old_src[j]), int(old_tgt[j])} == set(victim)
            else:
                assert g.csr_source[nj] == old_src[j]
                assert g.csr_target[nj] == old_tgt[j]
                assert g.csr_weight[nj] == old_w[j]
                survived += 1
        assert survived == remap.old_n_slots - 2  # both directions of one edge

    def test_mutated_nodes_are_delta_endpoints(self):
        g = torus_graph(5, 5)
        u, v = g.edges()[0]
        remap = _apply(g, insert=[(7, 13)], delete=[(u, v)])
        assert set(remap.mutated_nodes.tolist()) == {u, v, 7, 13}

    def test_delete_absent_edge_raises(self):
        g = torus_graph(5, 5)
        with pytest.raises(GraphError, match="not .*present"):
            _apply(g, delete=[(0, 12)])

    def test_multigraph_occurrence_matching(self):
        g = Graph(3, [(0, 1), (0, 1), (1, 2)])
        _apply(g, delete=[(1, 0)])  # orientation-free: removes ONE parallel edge
        assert g.m == 2 and g.degree(0) == 1
        _apply(g, delete=[(0, 1)])
        assert g.m == 1
        with pytest.raises(GraphError, match="not .*present"):
            _apply(g, delete=[(0, 1)])

    def test_double_delete_of_parallel_pair_in_one_delta(self):
        g = Graph(3, [(0, 1), (0, 1), (1, 2), (0, 2)])
        _apply(g, delete=[(0, 1), (0, 1)])
        assert g.m == 2 and g.degree(0) == 1

    def test_weighted_insert_changes_walk_law(self):
        g = Graph(3, [(0, 1), (1, 2)])
        _apply(g, insert=[(0, 2)], weights=[3.0])
        assert g.is_weighted
        assert g.weighted_degree(0) == 4.0
        # Lazy caches rebuilt: has_edge and reverse_slot see the new edge.
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        for s in range(g.n_slots):
            r = g.reverse_slot(s)
            assert g.csr_source[r] == g.csr_target[s] and g.csr_target[r] == g.csr_source[s]

    def test_network_refresh_topology(self):
        g = torus_graph(4, 4)
        net = Network(g, seed=1)
        u, v = g.edges()[0]
        assert net.are_adjacent(u, v)
        _apply(g, insert=[(0, 10)], delete=[(u, v)])
        net.refresh_topology()
        assert not net.are_adjacent(u, v)
        assert net.edge_multiplicity(0, 10) == 1

    def test_apply_delta_rejects_out_of_range_and_wrong_type(self):
        g = torus_graph(4, 4)
        with pytest.raises(GraphError, match="out of range"):
            _apply(g, insert=[(0, 99)])
        with pytest.raises(GraphError, match="GraphDelta"):
            g.apply_delta([(0, 1)])


class TestStoreInvalidation:
    def _store_with_paths(self, paths: list[list[int]], sources=None) -> WalkStore:
        store = WalkStore()
        lengths = np.array([len(p) - 1 for p in paths], dtype=np.int64)
        width = int(lengths.max()) + 1
        matrix = np.zeros((len(paths), width), dtype=np.int64)
        for i, p in enumerate(paths):
            matrix[i, : len(p)] = p
            matrix[i, len(p):] = p[-1]  # scratch columns mimic the walk loop
        src = np.array(
            [p[0] for p in paths] if sources is None else sources, dtype=np.int64
        )
        dst = np.array([p[-1] for p in paths], dtype=np.int64)
        store.add_batch(src, lengths, dst, paths=matrix)
        return store

    def test_scan_flags_steps_from_mutated_nodes_only(self):
        # Token 0 steps from node 5 (mutated): invalid.  Token 1 merely
        # *ends* at node 5: the final position samples nothing, so valid.
        # Token 2 never touches node 5: valid.
        store = self._store_with_paths([[5, 1, 2], [3, 4, 5], [6, 7, 8]])
        mutated = np.zeros(10, dtype=bool)
        mutated[5] = True
        rows = store.find_invalid_rows(mutated, np.empty(0, dtype=np.int64), 10)
        assert rows.tolist() == [0]

    def test_scan_flags_deleted_edge_traversal(self):
        store = self._store_with_paths([[1, 2, 3], [3, 4, 6]])
        mutated = np.zeros(10, dtype=bool)
        deleted = np.array([2 * 10 + 3], dtype=np.int64)  # undirected edge {2, 3}
        rows = store.find_invalid_rows(mutated, deleted, 10)
        assert rows.tolist() == [0]

    def test_scratch_columns_do_not_vote(self):
        # A length-1 token whose scratch columns repeat a mutated endpoint
        # must not be evicted: only column 0 is a step-from position.
        store = self._store_with_paths([[1, 9]])
        mutated = np.zeros(10, dtype=bool)
        mutated[9] = True
        rows = store.find_invalid_rows(mutated, np.empty(0, dtype=np.int64), 10)
        assert rows.size == 0

    def test_evict_rows_bookkeeping(self):
        store = self._store_with_paths([[5, 1, 2], [5, 2, 3], [6, 7, 8]])
        sources = store.evict_rows(np.array([0, 1]))
        assert sources.tolist() == [5, 5]
        assert store.tokens_evicted == 2
        assert store.total_unused() == 1 == len(store)
        assert store.count_for_source(5) == 0
        assert store.count_for_source(6) == 1
        assert [t.token_id for t in store.iter_all()] == [2]
        assert store.sample_uniform_token(5, make_rng(1)) is None
        with pytest.raises(WalkError, match="not live"):
            store.evict_rows(np.array([0]))

    def test_scan_survives_uninitialized_refill_scratch(self):
        # Refill batches allocate np.empty path matrices and break out of
        # the reservoir extension once every token retires, leaving
        # trailing columns as raw heap garbage (arbitrary int64s, possibly
        # >= n).  The scan must neutralize those BEFORE fancy-indexing the
        # mutated mask, not merely mask them out of the vote.
        from repro.congest import Network
        from repro.graphs import cycle_graph
        from repro.walks.get_more_walks import get_more_walks

        g = cycle_graph(12)
        store = WalkStore()
        for seed in range(8):  # several one-token refills: some retire early
            get_more_walks(Network(g, seed=seed), store, 0, 1, 4, make_rng(seed))
        mutated = np.zeros(g.n, dtype=bool)
        mutated[3] = True
        rows = store.find_invalid_rows(mutated, np.empty(0, dtype=np.int64), g.n)
        for row in rows.tolist():  # flagged tokens really stepped from node 3
            token = next(t for t in store.iter_all() if t.token_id == int(store._ids[row]))
            assert 3 in token.path[: token.length].tolist()

    def test_evict_frees_path_batches(self):
        store = self._store_with_paths([[0, 1], [1, 2]])
        store.evict_rows(store.live_rows())
        assert store._path_batches == [None]
        assert store.total_unused() == 0


def _safe_delta(graph, seed=5, deletes=3, inserts=3):
    return sample_churn_delta(
        graph, make_rng(seed), deletes=deletes, inserts=inserts, preserve_connectivity=True
    )


class TestChurnCascade:
    def test_cascade_consistency(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=11, auto_maintain=False)
        engine.prepare(lam=5)
        engine.walk(0, 64)
        delta = _safe_delta(torus_8x8, seed=2)
        report = engine.apply_churn(delta)
        assert report.edges_deleted == 3 and report.edges_inserted == 3
        assert report.tokens_evicted > 0 and not report.full_eviction
        assert report.rounds == report.regen_rounds > 0
        assert engine._tree_cache == {}
        # Quotas re-derive from the new degree profile.
        manager = engine.pool_manager
        from repro.walks.short_walks import token_counts

        base = token_counts(engine.graph.degrees, engine.pool.eta, degree_proportional=True)
        shard_ids = np.arange(engine.graph.n) % manager.num_shards
        for shard in manager.shards:
            assert shard.quota == int(base[shard_ids == shard.shard_id].sum())
        # Charged to the churn family on the session ledger.
        stats = engine.stats()
        assert stats.phase_rounds["pool-refill/churn"] == report.regen_rounds
        assert stats.churn_events == 1
        assert stats.churn_tokens_evicted == report.tokens_evicted
        assert stats.churn_tokens_regenerated == report.tokens_regenerated
        # Serving continues on the new topology.
        res = engine.walk(3, 64)
        assert res.mode == "stitched"
        assert "pool-refill/churn" not in res.phase_rounds  # never in a request delta

    def test_survivors_are_exactly_the_valid_tokens(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=13, auto_maintain=False)
        engine.prepare(lam=5)
        store = engine.pool.store
        pre_churn_ids = {t.token_id for t in store.iter_all()}
        delta = _safe_delta(torus_8x8, seed=3)
        # Capture the remap by applying the same delta to a twin graph.
        twin = torus_graph(8, 8)
        remap = twin.apply_delta(
            GraphDelta(insert_edges=delta.insert_edges, delete_edges=delta.delete_edges)
        )
        engine.apply_churn(delta)
        mutated = set(remap.mutated_nodes.tolist())
        for token in store.iter_all():
            if token.token_id not in pre_churn_ids:
                continue  # regenerated on the new graph
            # Survivor: no recorded step was sampled at a mutated node.
            assert not any(int(v) in mutated for v in token.path[: token.length])

    def test_cold_engine_churn_is_topology_only(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=1)
        report = engine.apply_churn(_safe_delta(torus_8x8))
        assert report.tokens_scanned == report.tokens_evicted == 0
        assert report.rounds == 0
        assert engine.pool is None

    def test_pathless_pool_falls_back_to_full_eviction(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=9, record_paths=False, auto_maintain=False)
        engine.prepare(lam=5)
        before = engine.pool.store.total_unused()
        report = engine.apply_churn(_safe_delta(torus_8x8, seed=4))
        assert report.full_eviction
        assert report.tokens_evicted == before
        assert report.tokens_regenerated > 0
        assert engine.walk(0, 64).mode == "stitched"

    def test_budgeted_churn_defers_and_prices_into_admission(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=21, record_paths=False, auto_maintain=False)
        engine.prepare(lam=5)
        # A size-sensitive price model (as after observed congestion) makes
        # the budget bite; a fresh EMA prices every sweep at the flat
        # iteration base, where splitting would buy nothing by design.
        engine.pool_manager._congestion_per_token = 1.0
        report = engine.apply_churn(_safe_delta(torus_8x8, seed=6), round_budget=1)
        assert report.deferred_shards, "budget of 1 round must defer shards"
        manager = engine.pool_manager
        assert manager.outstanding_deficit() > 0
        # The deferred shards' deficit is visible to admission pricing: a
        # request on a deferred below-watermark shard with a tiny budget
        # is rejected for free.
        sched = engine.scheduler(max_batch_requests=2)
        unused = manager.shard_unused()
        needy = [
            s for s in report.deferred_shards
            if unused[s] < manager.shards[s].low_watermark
        ]
        assert needy, "deferred shards should sit below watermark"
        source = next(
            v for v in range(engine.graph.n) if manager.shard_of(v) == needy[0]
        )
        assert manager.estimate_refill_rounds([needy[0]]) > 1
        ticket = sched.submit([source], 64, deadline=1)
        assert ticket.status == "rejected"
        assert ticket.reject_reason == "shard-refill-exceeds-budget"

    def test_ledger_balance_with_churn_family(self, torus_8x8):
        # The PR-4 accounting contract extended: Σ attributed + maintain +
        # churn = session delta exactly, with churn events interleaved
        # between scheduler ticks.
        engine = WalkEngine(torus_8x8, seed=31, record_paths=True, auto_maintain=False)
        engine.prepare(lam=5)
        base = engine.network.rounds
        sched = engine.scheduler(max_batch_requests=2, maintain_round_budget=40)
        tickets = []
        for i in range(8):
            tickets.append(sched.submit([(9 * i) % 64], 128, deadline=1_000_000))
            if i % 3 == 2:
                engine.apply_churn(_safe_delta(engine.graph, seed=100 + i, deletes=2, inserts=2))
            sched.tick()
        sched.drain()
        done = [t for t in tickets if t.status == "done"]
        assert len(done) == 8
        ledger = engine.network.ledger
        attributed = sum(t.rounds_attributed for t in done)
        maintain = ledger.phase_rounds("pool-refill/maintain")
        churn = ledger.phase_rounds("pool-refill/churn")
        assert churn > 0
        assert attributed + maintain + churn == engine.network.rounds - base
        # No request delta ever contains churn work.
        for t in done:
            assert "pool-refill/churn" not in t.result.phase_rounds

    def test_post_churn_endpoints_follow_new_law(self):
        # The satellite exactness claim: after churn, pooled endpoints
        # (with shared refills across 400 queries) follow the NEW graph's
        # exact P^l distribution.
        g = complete_graph(6)
        length = 40
        engine = WalkEngine(g, seed=4321, record_paths=True)
        engine.prepare(lam=4)
        engine.walk(0, length)  # warm serving before the topology moves
        delta = GraphDelta(insert_edges=[(0, 1)], delete_edges=[(2, 3), (4, 5)])
        engine.apply_churn(delta)
        dist = WalkSpectrum(engine.graph).distribution(0, length)
        endpoints = [engine.walk(0, length).destination for _ in range(400)]
        observed = {v: endpoints.count(v) for v in set(endpoints)}
        expected = {v: float(dist[v]) for v in range(g.n) if dist[v] > 1e-12}
        assert not chi_square_goodness_of_fit(observed, expected).rejects_at(1e-4)

    def test_fixed_seed_replays_churned_stream(self):
        def run():
            graph = torus_graph(8, 8)  # churn mutates in place: fresh per run
            engine = WalkEngine(graph, seed=55, auto_maintain=False)
            engine.prepare(lam=5)
            out = [engine.walk(i % 64, 96).destination for i in range(5)]
            engine.apply_churn(_safe_delta(graph, seed=8))
            out += [engine.walk(i % 64, 96).destination for i in range(5)]
            return out, engine.network.rounds

        assert run() == run()


class TestChurnWorkload:
    def test_sample_delta_preserves_connectivity(self):
        g = torus_graph(6, 6)
        rng = make_rng(3)
        for _ in range(5):
            delta = sample_churn_delta(g, rng, deletes=4, inserts=2)
            g.apply_delta(delta)
            assert is_connected(g)

    def test_sample_delta_can_fall_short_on_trees(self):
        # Every edge of a path is a bridge: nothing is deletable.
        from repro.graphs import path_graph

        g = path_graph(8)
        delta = sample_churn_delta(g, make_rng(1), deletes=3, inserts=0)
        assert len(delta.delete_edges) == 0

    def test_churn_spec_validation(self):
        with pytest.raises(WalkError):
            ChurnSpec(delete_rate=-1)
        with pytest.raises(WalkError):
            ChurnSpec(round_budget=0)

    def test_run_churn_loop_end_to_end(self, torus_8x8):
        engine = WalkEngine(torus_8x8, seed=17, record_paths=True, auto_maintain=False)
        engine.prepare(lam=5)
        sched = engine.scheduler(max_batch_requests=4, maintain_round_budget=60)
        traffic = TrafficSpec(n=64, lengths=(96,), ks=(1, 2))
        churn = ChurnSpec(delete_rate=1.0, insert_rate=1.0)
        tickets, reports = run_churn_loop(
            sched, traffic, churn, make_rng(9), rate=2.0, ticks=6
        )
        assert reports, "six ticks at rate 1+1 should produce churn events"
        assert all(t.status in ("done", "rejected") for t in tickets)
        done = [t for t in tickets if t.status == "done"]
        assert done and all(len(t.result.destinations) == t.k for t in done)
        assert engine.stats().churn_events == len(reports)
        assert is_connected(engine.graph)


class TestSpeculativePrefetch:
    def _depleted_pair(self):
        """An engine with >= 2 equally-urgent depleted shards."""
        g = torus_graph(8, 8)
        engine = WalkEngine(g, seed=23, record_paths=False, auto_maintain=False)
        engine.prepare(lam=5)
        manager = engine.pool_manager
        i = 0
        while len(manager.depleted_shards()) < 2 and i < 300:
            engine.walk(i % 64, 256)
            i += 1
        depleted = manager.depleted_shards()
        assert len(depleted) >= 2
        return engine, manager, depleted

    def test_demand_steers_maintenance_order(self):
        engine, manager, depleted = self._depleted_pair()
        baseline = manager.maintenance_order(depleted)
        target = baseline[-1]  # least urgent without demand
        manager.note_demand([target] * (engine.pool.store.tokens_created))  # overwhelming
        assert manager.maintenance_order(depleted)[0] == target
        # Demand is consumed by the next maintain: the ordering reverts.
        engine.maintain(round_budget=1)
        assert np.all(manager._prefetch_demand == 0)

    def test_queued_tickets_warm_their_shards(self):
        engine, manager, depleted = self._depleted_pair()
        target = manager.maintenance_order(depleted)[-1]  # least urgent w/o demand
        others = [s for s in depleted if s != target]
        source = next(v for v in range(engine.graph.n) if manager.shard_of(v) == target)
        # Size-sensitive price model so budget=1 forces a single-shard
        # prefix; walks shorter than the loop margin (2λ = 10) never touch
        # the pool, so the cohort cannot mask the maintenance decision.
        manager._congestion_per_token = 1.0
        sched = engine.scheduler(
            max_batch_requests=1, maintain_round_budget=1, speculative_prefetch=True
        )
        sched.submit([0], 8)
        for _ in range(12):
            sched.submit([source], 8)
        report = sched.tick()
        # The queued burst was noted and steered the budgeted maintain to
        # the demanded shard; the previously more-urgent shards deferred.
        assert sched.stats().prefetch_shards_noted >= 12
        assert manager.shards[target].refills == 1
        assert all(manager.shards[s].refills == 0 for s in others)
        assert set(others) <= set(report.deferred_shards)
        sched.drain()

    def test_prefetch_off_notes_nothing(self):
        engine, manager, depleted = self._depleted_pair()
        target = manager.maintenance_order(depleted)[-1]
        source = next(v for v in range(engine.graph.n) if manager.shard_of(v) == target)
        manager._congestion_per_token = 1.0
        sched = engine.scheduler(
            max_batch_requests=1, maintain_round_budget=1, speculative_prefetch=False
        )
        sched.submit([0], 8)
        for _ in range(12):
            sched.submit([source], 8)
        sched.tick()
        # Without prefetch the burst exerts no ordering pressure: the
        # emptiest shard refills first and the demanded one stays behind.
        assert sched.stats().prefetch_shards_noted == 0
        assert manager.shards[target].refills == 0
        sched.drain()
