"""Congestion cartography (PR 10): passivity + exact conservation.

The :class:`~repro.obs.heatmap.HeatmapSink` claims two hard guarantees:

* **passivity** — attaching per-edge attribution changes *nothing*
  simulated: every golden one-shot ledger stays bit-identical, and a
  full serve session through churn + a crash/recover episode lands on
  the identical round/message totals;
* **conservation** — for every ledger phase,
  ``located + retired + residual == ledger messages`` exactly, the
  residual is zero on every covered workload (all staging sites really
  fire), and the per-edge congestion maxima reproduce the ledger's
  ``max_congestion`` scalar.

Plus the churn-survival mechanics (slot remaps preserve history, deleted
slots retire without losing a message) and the export surfaces
(Perfetto counter track, JSON summary schema).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import WalkEngine, random_regular_graph
from repro.congest import Network
from repro.dynamic import sample_churn_delta
from repro.obs import HeatmapSink, Probe, SloMonitor, Tracer
from repro.walks import single_random_walk

from test_ledger_golden import GOLDEN_SINGLE, SINGLE_CASES, _snapshot
from test_obs import run_session


def golden_run_with_heatmap(name: str):
    """One golden single-walk case with a live heatmap observer."""
    factory, source, length, seed, kwargs = SINGLE_CASES[name]
    graph = factory()
    net = Network(graph, seed=0)
    heatmap = HeatmapSink()
    heatmap.bind_topology(graph.n, graph.csr_source, graph.csr_target)
    probe = Probe(heatmap=heatmap)
    net.ledger.observer = probe
    probe.attached(net.ledger)
    net.heatmap = heatmap
    result = single_random_walk(graph, source, length, seed=seed, network=net, **kwargs)
    return net, result, heatmap


@pytest.fixture(scope="module")
def heatmapped_session():
    heatmap = HeatmapSink()
    engine, sched, snap = run_session(
        tracer=Tracer(), heatmap=heatmap, slo=SloMonitor()
    )
    return engine, sched, snap, heatmap


# ----------------------------------------------------------------------
# Passivity: attribution changes nothing simulated
# ----------------------------------------------------------------------
class TestPassivity:
    @pytest.mark.parametrize("name", sorted(SINGLE_CASES))
    def test_golden_ledgers_bit_identical_with_heatmap(self, name):
        net, result, _ = golden_run_with_heatmap(name)
        want = GOLDEN_SINGLE[name]
        got = {
            "destination": int(result.destination),
            "mode": result.mode,
            "gmw": result.get_more_walks_calls,
            **_snapshot(net),
        }
        assert got == want

    def test_serve_session_bit_identical_with_heatmap(self, heatmapped_session):
        engine_h, sched_h, _, _ = heatmapped_session
        engine_u, sched_u, _ = run_session()  # same seeds, no observer
        assert engine_h.network.rounds == engine_u.network.rounds
        assert engine_h.network.ledger.messages == engine_u.network.ledger.messages
        st, su = sched_h.stats(), sched_u.stats()
        assert st.walks_served == su.walks_served
        assert st.completed == su.completed
        assert st.tenants == su.tenants


# ----------------------------------------------------------------------
# Conservation: the staged attribution is the ledger, edge by edge
# ----------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("name", sorted(SINGLE_CASES))
    def test_golden_cases_conserve_exactly_with_zero_residual(self, name):
        net, _, heatmap = golden_run_with_heatmap(name)
        for phase, stats in net.ledger.phases.items():
            assert heatmap.attributed_messages(phase) == stats.messages, phase
            assert heatmap.residual_messages(phase) == 0, phase
        assert heatmap.messages_total == net.ledger.messages
        assert heatmap.rounds_total == net.ledger.rounds
        assert heatmap.max_edge_congestion() == net.ledger.max_congestion

    def test_serve_session_conserves_through_churn_and_crash(self, heatmapped_session):
        engine, _, _, heatmap = heatmapped_session
        ledger = engine.network.ledger
        for phase, stats in ledger.phases.items():
            assert heatmap.attributed_messages(phase) == stats.messages, phase
            assert heatmap.residual_messages(phase) == 0, phase
        assert heatmap.residual_messages() == 0
        # Churn retired some deleted-slot history — still conserved above.
        assert heatmap.remaps >= 1
        assert heatmap.retired_messages() > 0
        assert heatmap.max_edge_congestion() == ledger.max_congestion

    def test_node_totals_are_sender_marginal_of_slot_totals(self, heatmapped_session):
        _, _, _, heatmap = heatmapped_session
        assert int(heatmap.node_totals().sum()) == int(heatmap.slot_totals().sum())
        assert int(heatmap.slot_totals().sum()) == heatmap.located_messages()


# ----------------------------------------------------------------------
# Churn survival: slot remaps never lose a message
# ----------------------------------------------------------------------
class TestRemap:
    def test_remap_preserves_history_and_retires_deleted_slots(self):
        rng = np.random.default_rng(5)
        graph = random_regular_graph(64, 4, 9)
        sink = HeatmapSink()
        sink.bind_topology(graph.n, graph.csr_source, graph.csr_target)
        old_slots = sink.n_slots
        sink.stage_edges(np.arange(old_slots), np.ones(old_slots, dtype=np.int64))
        sink.settle_charge("phase1", 1, old_slots, 1)
        before = sink.attributed_messages("phase1")
        assert before == old_slots

        remap = graph.apply_delta(sample_churn_delta(graph, rng, deletes=6, inserts=6))
        sink.apply_remap(
            remap, n=graph.n, edge_src=graph.csr_source, edge_dst=graph.csr_target
        )
        # Conserved: every old message is on a surviving slot or retired.
        assert sink.attributed_messages("phase1") == before
        assert sink.retired_messages("phase1") == 2 * remap.edges_deleted
        assert sink.located_messages("phase1") == before - 2 * remap.edges_deleted
        assert sink.n_slots == remap.new_n_slots == len(graph.csr_source)
        # New slots (inserted edges) start with no history.
        totals = sink.slot_totals()
        assert int((totals > 1).sum()) == 0
        assert sink.max_edge_congestion() == 1

    def test_rebind_with_wrong_slot_count_is_an_error(self):
        graph = random_regular_graph(32, 4, 3)
        sink = HeatmapSink()
        sink.bind_topology(graph.n, graph.csr_source, graph.csr_target)
        with pytest.raises(ValueError, match="apply_remap"):
            sink.bind_topology(graph.n, graph.csr_source[:-2], graph.csr_target[:-2])

    def test_remap_with_wrong_width_is_an_error(self):
        graph = random_regular_graph(32, 4, 3)
        sink = HeatmapSink()
        sink.bind_topology(graph.n, graph.csr_source, graph.csr_target)
        rng = np.random.default_rng(1)
        remap = graph.apply_delta(sample_churn_delta(graph, rng, deletes=0, inserts=4))
        assert remap.new_n_slots != remap.old_n_slots
        sink.apply_remap(
            remap, n=graph.n, edge_src=graph.csr_source, edge_dst=graph.csr_target
        )
        # Replaying the same remap is a width mismatch — caught, not folded.
        with pytest.raises(ValueError, match="slots"):
            sink.apply_remap(
                remap, n=graph.n, edge_src=graph.csr_source, edge_dst=graph.csr_target
            )


# ----------------------------------------------------------------------
# Reports and exports
# ----------------------------------------------------------------------
class TestExports:
    def test_summary_schema_and_top_lists(self, heatmapped_session):
        _, _, _, heatmap = heatmapped_session
        summary = heatmap.summary(top=5)
        assert summary["schema"] == "congestion_heatmap/v1"
        assert summary["messages"] == heatmap.messages_total
        assert len(summary["top_edges"]) == 5
        assert len(summary["top_nodes"]) == 5
        # Hot lists are sorted by load, and every row names a real slot.
        loads = [row["messages"] for row in summary["top_edges"]]
        assert loads == sorted(loads, reverse=True)
        for row in summary["top_edges"]:
            assert 0 <= row["slot"] < heatmap.n_slots
            assert row["src"] == int(heatmap.edge_src[row["slot"]])
            assert row["dst"] == int(heatmap.edge_dst[row["slot"]])
        # Pipelined cohorts share every charge, so no charge carries a
        # tenant annotation here (see test_tenant_attribution below for
        # the private-report path that does).
        assert summary["tenants"] == {}
        # Phase table carries the conservation split per phase.
        for phase, cell in summary["phases"].items():
            assert (
                cell["located"] + cell["retired"] + cell["residual"]
                == heatmap.attributed_messages(phase)
            )

    def test_tenant_attribution_on_private_report_charges(self):
        from repro.serve import TenantRegistry

        graph = random_regular_graph(200, 4, 3)
        engine = WalkEngine(graph, seed=5, record_paths=False, auto_maintain=False)
        heatmap = HeatmapSink()
        engine.attach_observability(heatmap=heatmap)
        engine.prepare(length_hint=128)
        registry = TenantRegistry()
        registry.register("free", weight=1.0)
        registry.register("pro", weight=4.0)
        sched = engine.scheduler(tenants=registry, pipelined_report=False)
        sched.submit([0, 1], 128, tenant="pro")
        sched.submit([2, 3], 128, tenant="free")
        sched.drain()
        table = heatmap.tenant_table()
        # Non-pipelined per-ticket report convergecasts carry the tenant
        # annotation into settlement.
        assert set(table) == {"free", "pro"}
        assert all(cell["messages"] > 0 for cell in table.values())

    def test_counter_events_form_a_monotonic_perfetto_track(self, heatmapped_session):
        _, _, _, heatmap = heatmapped_session
        events = heatmap.counter_events()
        assert events, "expected counter samples from a full session"
        assert all(ev["ph"] == "C" for ev in events)
        message_ts = [ev["ts"] for ev in events if ev["name"] == "attributed messages"]
        assert message_ts == sorted(message_ts)
        totals = [
            ev["args"]["messages"] for ev in events if ev["name"] == "attributed messages"
        ]
        assert totals == sorted(totals)  # cumulative counter never decreases

    def test_json_roundtrip_and_write(self, heatmapped_session, tmp_path):
        _, _, _, heatmap = heatmapped_session
        doc = json.loads(heatmap.to_json(top=3))
        assert doc["schema"] == "congestion_heatmap/v1"
        path = heatmap.write(tmp_path / "heatmap.json", top=3)
        assert json.loads(path.read_text()) == doc

    def test_chrome_trace_merges_counter_track(self, tmp_path):
        heatmap = HeatmapSink()
        engine, _, _ = run_session(tracer=(tracer := Tracer()), heatmap=heatmap)
        trace = tracer.to_chrome_trace(
            extra_events=heatmap.counter_events(),
            extra_other={"heatmap_messages": heatmap.messages_total},
        )
        counters = [ev for ev in trace["traceEvents"] if ev.get("ph") == "C"]
        assert len(counters) == len(heatmap.counter_events())
        assert trace["otherData"]["heatmap_messages"] == engine.network.ledger.messages
