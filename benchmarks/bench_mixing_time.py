"""E9 — Theorem 4.6: decentralized mixing-time estimation.

Measures, per topology: the exact ``τ^x_mix`` and ``τ^x(ε)`` anchors, the
decentralized estimate (must land in the sandwich), its round cost against
the theorem's ``Õ(n^{1/2} + n^{1/4}·√(D·τ))`` curve, and the
power-iteration baseline (the paper's point of comparison: the new
estimator wins asymptotically once ``τ = ω(√n)``, where walk batching
beats step-by-step propagation).  Also reproduces the §4.2 closing remark:
spectral-gap and conductance intervals derived from the estimate bracket
the exact values.
"""

from __future__ import annotations

import math


from repro.apps import estimate_mixing_time, power_iteration_mixing_time
from repro.graphs import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    diameter,
    random_regular_graph,
    torus_graph,
)
from repro.markov import (
    WalkSpectrum,
    conductance_exact,
    exact_mixing_time,
    spectral_gap,
)
from repro.util.tables import render_table

FAMILIES = [
    ("complete(16)", lambda: complete_graph(16)),
    ("expander(32,4)", lambda: random_regular_graph(32, 4, 9)),
    ("torus(5x5)", lambda: torus_graph(5, 5)),
    ("cycle(15)", lambda: cycle_graph(15)),
    ("barbell(8,1)", lambda: barbell_graph(8, 1)),
]


def test_e9_sandwich_and_rounds(benchmark, reporter):
    rows = []
    for name, factory in FAMILIES:
        g = factory()
        spec = WalkSpectrum(g)
        tau_mix = exact_mixing_time(g, 0, spectrum=spec)
        tau_eps = exact_mixing_time(g, 0, 0.01, spectrum=spec)
        est = estimate_mixing_time(g, 0, seed=51, samples=500)
        d = diameter(g)
        curve = math.sqrt(g.n) + g.n**0.25 * math.sqrt(d * max(tau_mix, 1))
        sandwiched = max(1, tau_mix // 2) <= est.estimate <= max(tau_eps, 2 * tau_mix, 4) + 2
        rows.append(
            (
                name,
                tau_mix,
                est.estimate,
                tau_eps,
                "yes" if sandwiched else "NO",
                est.rounds,
                round(curve, 0),
            )
        )
    table = render_table(
        ["graph", "τ_mix (exact)", "τ̃ (estimate)", "τ(0.01) (exact)", "sandwiched", "rounds", "√n + n^¼√(Dτ)"],
        rows,
        title="E9 decentralized mixing-time estimation (Theorem 4.6 sandwich)",
    )
    reporter.emit("E9_mixing_time", table)

    for row in rows:
        assert row[4] == "yes", row
    # Slow families must be recognized as slower.
    taus = {row[0]: row[2] for row in rows}
    assert taus["barbell(8,1)"] > taus["complete(16)"]
    assert taus["cycle(15)"] > taus["expander(32,4)"]

    g = torus_graph(5, 5)
    benchmark.pedantic(
        lambda: estimate_mixing_time(g, 0, seed=53, samples=300),
        rounds=3,
        iterations=1,
    )


def test_e9_vs_power_iteration_baseline(benchmark, reporter):
    rows = []
    for name, factory in FAMILIES:
        g = factory()
        # Theorem 4.6's own sample budget: Õ(√n) walks per identity test.
        est = estimate_mixing_time(g, 0, seed=55)
        base_tau, base_rounds = power_iteration_mixing_time(g, 0)
        tau = exact_mixing_time(g, 0)
        rows.append(
            (
                name,
                tau,
                round(tau / math.sqrt(g.n), 2),
                est.samples_per_test,
                est.rounds,
                base_rounds,
                round(est.rounds / base_rounds, 1),
            )
        )
    rows.sort(key=lambda r: r[2])
    table = render_table(
        ["graph", "τ_mix", "τ/√n", "K (samples)", "sampling rounds", "power-iter rounds", "ratio"],
        rows,
        title=(
            "E9 estimator vs Õ(τ) baseline — the paper's win condition is "
            "asymptotic (τ = ω(√n)); at simulation scale the baseline's tiny "
            "constants still win, but the cost *ratio* must fall as τ/√n grows"
        ),
    )
    reporter.emit("E9_mixing_time", table)

    # Shape check: the relative cost at the most-slowly-mixing end must be
    # materially better than at the fastest end — the trend behind the
    # theorem's τ = ω(√n) crossover.
    assert rows[-1][6] < rows[0][6], (rows[0], rows[-1])

    g = complete_graph(16)
    benchmark.pedantic(
        lambda: power_iteration_mixing_time(g, 0),
        rounds=3,
        iterations=1,
    )


def test_e9_spectral_and_conductance_intervals(benchmark, reporter):
    rows = []
    for name, factory in FAMILIES:
        g = factory()
        est = estimate_mixing_time(g, 0, seed=57, samples=400)
        gap_iv = est.spectral_gap_bounds(g.n)
        gap = spectral_gap(g)
        phi = conductance_exact(g, max_nodes=32) if g.n <= 18 else None
        cond_iv = est.conductance_bounds(g.n)
        rows.append(
            (
                name,
                round(gap, 4),
                str(gap_iv),
                "yes" if gap_iv.contains(gap, slack=4.0) else "NO",
                "-" if phi is None else round(phi, 4),
                str(cond_iv),
            )
        )
    table = render_table(
        ["graph", "gap (exact)", "gap interval (from τ̃)", "covered", "Φ (exact)", "Φ interval"],
        rows,
        title="E9 spectral gap & conductance from the mixing estimate (§4.2)",
    )
    reporter.emit("E9_mixing_time", table)

    for row in rows:
        assert row[3] == "yes", row

    benchmark.pedantic(
        lambda: spectral_gap(random_regular_graph(32, 4, 9)),
        rounds=3,
        iterations=1,
    )
