"""E6/E7 + Figures 1, 3–5 — Section 3: the Ω(√(ℓ/log ℓ) + D) lower bound.

E6 measures the interval-merging verification algorithm (a member of the
paper's token-forwarding class) on the hard instance ``G_n``: measured
rounds must sit *above* the Ω(√(ℓ/log ℓ)) curve (Theorem 3.2 says no class
member can beat it) while staying well below the trivial O(ℓ), and the
instance's diameter stays O(log n) — the whole point of the construction.

E7 runs the Theorem 3.7 reduction: on the weighted ``G'_n`` the walk
follows the planted path w.h.p. (measured follow fraction ≥ 1 − 1/n-ish),
so the verification cost transfers to the random-walk problem.
"""

from __future__ import annotations

import math


from repro.graphs import build_lower_bound_graph, pseudo_diameter, round_bound
from repro.lowerbound import (
    IntervalMergingVerifier,
    PathVerificationInstance,
    simulate_reduction,
)
from repro.util.fitting import fit_power_law
from repro.util.tables import render_table

SIZES = [64, 128, 256, 512, 1024, 2048]


def test_e6_path_verification_scaling(benchmark, reporter):
    rows = []
    lengths = []
    rounds_list = []
    for n in SIZES:
        inst = build_lower_bound_graph(n)
        pv = PathVerificationInstance.from_lower_bound(inst)
        result = IntervalMergingVerifier(pv).run()
        assert result.verified
        curve = round_bound(pv.length)
        d = pseudo_diameter(inst.graph)
        rows.append(
            (
                pv.length,
                d,
                result.rounds,
                round(curve, 1),
                round(result.rounds / curve, 2),
                result.messages,
            )
        )
        lengths.append(pv.length)
        rounds_list.append(result.rounds)
    fit = fit_power_law(lengths, rounds_list)
    table = render_table(
        ["ℓ (path length)", "diameter", "measured rounds", "Ω(√(ℓ/log ℓ))", "rounds/curve", "messages"],
        rows,
        title=(
            f"E6 PATH-VERIFICATION on G_n — measured exponent {fit.exponent:.2f} "
            "(lower bound says >= ~0.5; trivial algorithm is 1.0)"
        ),
    )
    reporter.emit("E6_lower_bound", table)

    # Every measurement sits above (a constant fraction of) the curve...
    for row in rows:
        assert row[2] >= 0.3 * row[3], row
        # ...and the tree shortcuts beat the trivial O(ℓ) algorithm.
        assert row[2] <= row[0] / 2, row
        # Diameter stays logarithmic (Figure 3's whole point).
        assert row[1] <= 4 * math.log2(row[0]) + 8
    # Growth is root-like, far from linear.
    assert 0.3 <= fit.exponent <= 0.85, fit

    benchmark.pedantic(
        lambda: IntervalMergingVerifier(
            PathVerificationInstance.from_lower_bound(build_lower_bound_graph(256))
        ).run(),
        rounds=3,
        iterations=1,
    )


def test_e7_reduction_walk_follows_path(benchmark, reporter):
    rows = []
    for n in [64, 128, 256, 512]:
        report = simulate_reduction(n, trials=25, seed=19, verify=(n <= 256))
        rows.append(
            (
                n,
                report.length,
                round(report.follow_fraction, 3),
                round(1 - 1 / n, 3),
                report.verification_rounds,
                round(report.lower_bound_curve, 1),
            )
        )
    table = render_table(
        ["n", "walk length", "follow fraction", "1 − 1/n", "verify rounds", "Ω curve"],
        rows,
        title="E7 Theorem 3.7 reduction: weighted G'_n forces the walk onto P",
    )
    reporter.emit("E7_reduction", table)

    for row in rows:
        assert row[2] >= row[3] - 0.08, row  # w.h.p. follow, sampling slack

    benchmark.pedantic(
        lambda: simulate_reduction(128, trials=5, seed=21, verify=False),
        rounds=3,
        iterations=1,
    )
