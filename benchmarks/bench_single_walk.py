"""E1 — Theorem 2.5: SINGLE-RANDOM-WALK in Õ(√(ℓD)) rounds.

Reproduces the paper's headline comparison as a measured table: round
counts of the naive ℓ-round walk, the PODC'09 Õ(ℓ^{2/3}D^{1/3}) algorithm,
and this paper's Õ(√(ℓD)) algorithm across a walk-length sweep, plus
fitted scaling exponents.  The paper's claim-shape we assert:

* naive exponent ≈ 1, PODC'09 ≈ 2/3, this paper ≈ 1/2 (±0.12);
* for long walks on low-diameter graphs the ordering is
  new < PODC'09 < naive;
* the crossover against naive sits near ℓ = Θ(D) (sublinear only helps
  once the walk is long compared to the diameter — §1.2).
"""

from __future__ import annotations

import pytest

from repro.graphs import diameter, hypercube_graph, torus_graph
from repro.util.fitting import fit_power_law
from repro.util.tables import render_table
from repro.walks import naive_random_walk, podc09_random_walk, single_random_walk

LENGTHS = [500, 1000, 2000, 4000, 8000, 16000]


def _sweep(graph, lengths, seed=17):
    rows = []
    for length in lengths:
        new = single_random_walk(graph, 0, length, seed=seed, record_paths=False)
        old = podc09_random_walk(graph, 0, length, seed=seed, record_paths=False)
        naive = naive_random_walk(graph, 0, length, seed=seed, record_paths=False)
        rows.append((length, new.rounds, old.rounds, naive.rounds, new.lam))
    return rows


@pytest.mark.parametrize(
    "name,factory",
    [
        ("hypercube(d=7)", lambda: hypercube_graph(7)),
        ("torus(8x8)", lambda: torus_graph(8, 8)),
    ],
)
def test_e1_round_scaling(benchmark, reporter, name, factory):
    graph = factory()
    d = diameter(graph)
    rows = _sweep(graph, LENGTHS)

    fit_new = fit_power_law([r[0] for r in rows], [r[1] for r in rows])
    fit_old = fit_power_law([r[0] for r in rows], [r[2] for r in rows])
    fit_naive = fit_power_law([r[0] for r in rows], [r[3] for r in rows])

    table = render_table(
        ["length", "new (√(ℓD))", "podc09 (ℓ^2/3)", "naive (ℓ)", "λ"],
        rows,
        title=(
            f"E1 single walk on {name} (n={graph.n}, D={d}) — "
            f"exponents: new {fit_new.exponent:.2f}, podc09 {fit_old.exponent:.2f}, "
            f"naive {fit_naive.exponent:.2f}"
        ),
    )
    reporter.emit("E1_single_walk", table)

    # Shape assertions (paper: 0.5 vs 2/3 vs 1).
    assert abs(fit_naive.exponent - 1.0) < 0.01
    assert abs(fit_new.exponent - 0.5) < 0.12, fit_new
    assert abs(fit_old.exponent - 2 / 3) < 0.12, fit_old
    # Ordering at the longest length: new wins, naive loses.
    final = rows[-1]
    assert final[1] < final[2] < final[3]

    benchmark.pedantic(
        lambda: single_random_walk(graph, 0, 4000, seed=3, record_paths=False),
        rounds=3,
        iterations=1,
    )


def test_e1_crossover_near_diameter(reporter, benchmark):
    """Naive wins for short walks; the stitched algorithm takes over later."""
    graph = torus_graph(8, 8)
    d = diameter(graph)
    rows = []
    crossover = None
    for length in [16, 64, 256, 1024, 4096]:
        new = single_random_walk(graph, 0, length, seed=5, record_paths=False)
        naive = naive_random_walk(graph, 0, length, seed=5, record_paths=False)
        winner = "new" if new.rounds < naive.rounds else "naive"
        if crossover is None and winner == "new":
            crossover = length
        rows.append((length, new.rounds, naive.rounds, winner))
    table = render_table(
        ["length", "new", "naive", "winner"],
        rows,
        title=f"E1 crossover on torus(8x8), D={d} (sublinear pays once ℓ >> D)",
    )
    reporter.emit("E1_single_walk", table)

    assert rows[0][3] == "naive"  # ℓ = 2D: naive still wins
    assert rows[-1][3] == "new"
    assert crossover is not None and crossover > d

    benchmark.pedantic(
        lambda: naive_random_walk(graph, 0, 1024, seed=5, record_paths=False),
        rounds=3,
        iterations=1,
    )
