"""Serving-layer bench: concurrent scheduling vs. serial request-at-a-time.

The PR-4 acceptance shape: on the n=10k random regular graph, an
8-request mixed-length workload per k ∈ {16, 64, 256} is served twice —

* **serial** — the PR-3 engine loop: one ``engine.walks()`` call per
  request, each paying its own setup, sweeps, tails, report, and
  full-quota auto-maintenance before the next request starts;
* **scheduled** — all 8 requests submitted to a
  :class:`~repro.serve.WalkScheduler` and drained: every cohort merges the
  requests' stitching sweeps over one shared BFS tree (one flood per
  sweep for the whole cohort, pipelined sampling across every parked
  walk, one merged tail phase), with deadline-driven maintenance.

Both sides serve from pools prepared with the *same* k-enlarged λ (the
``Θ(√(kℓD) + k)`` policy), so the recorded ratio isolates the scheduling
regime.  Recorded per row: total simulated rounds, throughput (walks per
1k rounds), and p50/p99 rounds-per-request.  ``tests/test_perf_smoke.py``
keeps a live small-n guard plus a static ≥2× check on the committed
section::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_serve.py --quick   # tiny config
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.engine import WalkEngine
from repro.graphs import pseudo_diameter, random_regular_graph
from repro.walks.params import many_walks_params

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

SERVE_N = 10_000
SERVE_DEGREE = 4
SERVE_SEED = 1201
SERVE_KS = [16, 64, 256]
SERVE_REQUESTS = 8
SERVE_LENGTHS = [512, 256, 1024]  # cycled per request: the "mixed" workload
QUICK_SERVE = {"n": 256, "degree": 4, "ks": [16], "lengths": [256, 128, 512], "seed": 1201}


def _workload(graph, k: int, requests: int, lengths: list[int]) -> list[tuple[list[int], int]]:
    """Deterministic mixed workload: k sources per request, cycled lengths."""
    return [
        (
            [(i * 37 + j * 13) % graph.n for j in range(k)],
            lengths[i % len(lengths)],
        )
        for i in range(requests)
    ]


def bench_serve(
    n: int = SERVE_N,
    degree: int = SERVE_DEGREE,
    ks: list[int] | None = None,
    requests: int = SERVE_REQUESTS,
    lengths: list[int] | None = None,
    seed: int = SERVE_SEED,
) -> dict:
    """One row per k: serial vs. scheduled total rounds on the same workload."""
    graph = random_regular_graph(n, degree, seed)
    lengths = SERVE_LENGTHS if lengths is None else lengths
    d_est = max(1, pseudo_diameter(graph))
    rows = []
    for k in ks if ks is not None else SERVE_KS:
        workload = _workload(graph, k, requests, lengths)
        lam = many_walks_params(k, max(lengths), d_est, n=graph.n).lam

        serial_engine = WalkEngine(graph, seed=seed, record_paths=False)
        serial_engine.prepare(lam=lam)
        serial_base = serial_engine.network.rounds
        serial_results = [serial_engine.walks(srcs, length) for srcs, length in workload]
        serial_rounds = serial_engine.network.rounds - serial_base

        sched_engine = WalkEngine(graph, seed=seed, record_paths=False, auto_maintain=False)
        sched_engine.prepare(lam=lam)
        scheduler = sched_engine.scheduler(max_batch_requests=requests)
        sched_base = sched_engine.network.rounds
        for srcs, length in workload:
            scheduler.submit(srcs, length)
        scheduler.drain()
        sched_rounds = sched_engine.network.rounds - sched_base
        stats = scheduler.stats()

        walks_total = requests * k
        serial_per_request = [r.rounds for r in serial_results]
        rows.append(
            {
                "k": k,
                "requests": requests,
                "lengths": [length for _, length in workload],
                "lam": lam,
                "serial_rounds": serial_rounds,
                "scheduled_rounds": sched_rounds,
                "rounds_speedup": serial_rounds / sched_rounds,
                "serial_throughput_per_1k_rounds": 1000.0 * walks_total / serial_rounds,
                "scheduled_throughput_per_1k_rounds": 1000.0 * walks_total / sched_rounds,
                "serial_p50_rounds": float(np.percentile(serial_per_request, 50)),
                "serial_p99_rounds": float(np.percentile(serial_per_request, 99)),
                "scheduled_p50_rounds": stats.p50_rounds_per_request,
                "scheduled_p99_rounds": stats.p99_rounds_per_request,
                "cohorts": stats.cohorts,
            }
        )
    return {
        "schema": "bench_serve/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "rows": rows,
    }


def main(argv: list[str]) -> int:
    section = bench_serve(**QUICK_SERVE) if "--quick" in argv else bench_serve()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["serve_scheduler"] = section
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"scheduled vs serial serving, {section['rows'][0]['requests']} requests, "
        f"n={section['n']} regular({section['degree']}):"
    )
    for r in section["rows"]:
        print(
            f"  k={r['k']:>4}  λ={r['lam']:>4}  serial {r['serial_rounds']:>8} rounds  "
            f"scheduled {r['scheduled_rounds']:>8} rounds  ({r['rounds_speedup']:.2f}x)  "
            f"p99 {r['serial_p99_rounds']:.0f} → {r['scheduled_p99_rounds']:.0f}"
        )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
