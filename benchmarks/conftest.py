"""Shared infrastructure for the benchmark harness.

Each bench module reproduces one experiment row from DESIGN.md §4: it
computes the paper-shaped table (round counts, ratios, exponents), prints
it live (bypassing capture), persists it under ``benchmarks/results/``,
asserts the *shape* claims (who wins, scaling exponents, sandwiches), and
wraps a representative computation in pytest-benchmark for wall-clock
tracking.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class Reporter:
    """Prints experiment tables live and mirrors them to results files."""

    def __init__(self, capsys) -> None:
        self._capsys = capsys
        RESULTS_DIR.mkdir(exist_ok=True)

    def emit(self, name: str, text: str) -> None:
        with self._capsys.disabled():
            print(f"\n{text}\n")
        path = RESULTS_DIR / f"{name}.txt"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")


@pytest.fixture
def reporter(capsys):
    return Reporter(capsys)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    for old in RESULTS_DIR.glob("*.txt"):
        old.unlink()
    yield
