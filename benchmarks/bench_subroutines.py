"""E5 — Lemmas 2.1–2.3: per-subroutine round costs.

* Phase 1 finishes in ``O(λ·η·log n)`` rounds (Lemma 2.1): measured
  rounds/λ stays within an ``O(log n)`` band across topologies.
* GET-MORE-WALKS finishes in ``O(λ)`` rounds regardless of walk count
  (Lemma 2.2): count aggregation keeps per-edge congestion at 1.
* SAMPLE-DESTINATION finishes in ``O(D)`` rounds (Lemma 2.3): three BFS
  sweeps.
"""

from __future__ import annotations

import math


from repro.congest import Network
from repro.graphs import (
    barbell_graph,
    cycle_graph,
    eccentricity,
    hypercube_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.util.rng import derive_rng
from repro.util.tables import render_table
from repro.walks import WalkStore, get_more_walks, perform_short_walks, sample_destination, token_counts

FAMILIES = [
    ("cycle(64)", lambda: cycle_graph(64)),
    ("torus(8x8)", lambda: torus_graph(8, 8)),
    ("hypercube(6)", lambda: hypercube_graph(6)),
    ("random_regular(64,4)", lambda: random_regular_graph(64, 4, 2)),
    ("star(64)", lambda: star_graph(64)),
    ("barbell(16,4)", lambda: barbell_graph(16, 4)),
]


def test_e5_phase1_rounds(benchmark, reporter):
    lam = 32
    rows = []
    for name, factory in FAMILIES:
        g = factory()
        net = Network(g, seed=0)
        store = WalkStore()
        counts = token_counts(g.degrees, 1.0, degree_proportional=True)
        rounds = perform_short_walks(net, store, lam, derive_rng(3, name), counts=counts)
        per_lambda = rounds / (2 * lam - 1)
        rows.append((name, g.n, rounds, round(per_lambda, 2), round(math.log2(g.n), 1)))
    table = render_table(
        ["graph", "n", "phase1 rounds", "rounds / (2λ−1)", "log2 n"],
        rows,
        title=f"E5 Lemma 2.1: Phase 1 rounds vs O(λ·η·log n), λ={lam}, η=1",
    )
    reporter.emit("E5_subroutines", table)

    for row in rows:
        # rounds per short-walk step must stay within O(log n): generous 3x.
        assert row[3] <= 3 * max(row[4], 1.0), row

    g = torus_graph(8, 8)

    def run():
        net = Network(g, seed=1)
        perform_short_walks(
            net,
            WalkStore(),
            lam,
            derive_rng(5, "bench"),
            counts=token_counts(g.degrees, 1.0, degree_proportional=True),
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_e5_get_more_walks_rounds(benchmark, reporter):
    lam = 24
    rows = []
    for count in [10, 100, 1000, 5000]:
        g = torus_graph(8, 8)
        net = Network(g, seed=0)
        store = WalkStore()
        rounds = get_more_walks(net, store, 0, count, lam, derive_rng(7, count))
        rows.append((count, rounds, net.ledger.max_congestion))
    table = render_table(
        ["#walks", "rounds", "max per-edge congestion"],
        rows,
        title=f"E5 Lemma 2.2: GET-MORE-WALKS is O(λ) rounds (λ={lam}), any walk count",
    )
    reporter.emit("E5_subroutines", table)

    round_counts = {r[1] for r in rows}
    # Rounds are independent of the number of walks (within the reservoir
    # stopping noise) and bounded by 2λ-1; congestion never exceeds 1.
    assert max(round_counts) <= 2 * lam - 1
    assert all(r[2] == 1 for r in rows)
    assert max(round_counts) - min(round_counts) <= 3

    benchmark.pedantic(
        lambda: get_more_walks(
            Network(torus_graph(8, 8), seed=1), WalkStore(), 0, 1000, lam, derive_rng(9, "b")
        ),
        rounds=3,
        iterations=1,
    )


def test_e5_sample_destination_rounds(benchmark, reporter):
    rows = []
    for name, factory in FAMILIES:
        g = factory()
        net = Network(g, seed=0)
        store = WalkStore()
        get_more_walks(net, store, 0, 50, 4, derive_rng(11, name))
        before = net.rounds
        record, _tree = sample_destination(net, store, 0, derive_rng(13, name))
        cost = net.rounds - before
        ecc = eccentricity(g, 0)
        rows.append((name, ecc, cost, round(cost / max(ecc, 1), 2)))
        assert record is not None
    table = render_table(
        ["graph", "ecc(source)", "rounds", "rounds / ecc"],
        rows,
        title="E5 Lemma 2.3: SAMPLE-DESTINATION is O(D) (3 tree sweeps)",
    )
    reporter.emit("E5_subroutines", table)

    for row in rows:
        assert row[2] <= 3 * row[1] + 2, row  # three sweeps + flood slack

    def run():
        g = torus_graph(8, 8)
        net = Network(g, seed=2)
        store = WalkStore()
        get_more_walks(net, store, 0, 50, 4, derive_rng(15, "b"))
        sample_destination(net, store, 0, derive_rng(17, "b"))

    benchmark.pedantic(run, rounds=3, iterations=1)
