"""Crash-fault bench: deadline misses and recovery overhead vs. crash rate.

The PR-6 acceptance shape: the n=10k random regular serving session drains
an 8-request mixed workload while a seeded crash/recover schedule
(:meth:`FaultSchedule.sample`, connectivity-preserving) fires underneath
it, at crash rates of 0, 0.1% and 1% of the node population.  Each row
reports

* **graceful degradation** — deadline-miss rate against a budget of
  1.5× the healthy run's p99 latency (misses are counted; requests are
  *never* dropped — ``completed == admitted`` is asserted);
* **recovery overhead** — the ``"serve/recovery"`` ledger bill (pool
  eviction, shard regeneration, tree rebuilds, prefix replays, backoff
  waits) and the total-round inflation over the fault-free run;
* **incremental vs. discard** — the baseline is *measured*, not modeled:
  a second run of the identical schedule with ``record_paths=False``,
  where every fault event falls back to discarding the whole pool
  (``live_rows`` eviction + full regeneration, the churn fallback) and
  every in-flight walk restarts from its source instead of resuming from
  a surviving prefix.  Incremental recovery touches only the dead
  neighborhoods and replays already-sampled prefixes, so the
  recovery-bill ratio at 1% crash rate is the headline number
  ``tests/test_perf_smoke.py`` guards (≥ 2×).

Deterministic at fixed seeds; measured in simulated rounds::

    PYTHONPATH=src python benchmarks/bench_faults.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_faults.py --quick   # tiny config
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.congest.faults import FaultSchedule
from repro.engine import WalkEngine
from repro.graphs import random_regular_graph

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

FAULT_N = 10_000
FAULT_DEGREE = 4
FAULT_LAM = 5
FAULT_ETA = 4.0
FAULT_SEED = 1201
FAULT_CRASH_RATES = [0.0, 0.001, 0.01]
FAULT_RECOVER_AFTER = 2_000
FAULT_REQUESTS = 8
FAULT_K = 16
FAULT_LENGTHS = [512, 256, 1024]
QUICK_FAULTS = {
    "n": 512,
    "crash_rates": [0.0, 0.01],
    "recover_after": 400,
    "requests": 4,
    "k": 4,
    "lengths": [128, 64],
    "seed": 1201,
}


def _workload(graph, k: int, requests: int, lengths: list[int]):
    """The bench_serve mixed workload: spread sources, cycled lengths."""
    return [
        ([(i * 37 + j * 13) % graph.n for j in range(k)], lengths[i % len(lengths)])
        for i in range(requests)
    ]


def _fresh_session(
    graph, *, lam: int, eta: float, seed: int, deadline: int | None, record_paths: bool = True
):
    engine = WalkEngine(
        graph, seed=seed, record_paths=record_paths, eta=eta, auto_maintain=False
    )
    engine.prepare(lam=lam)
    scheduler = engine.scheduler(
        max_batch_requests=4,
        maintain_round_budget=128,
        default_deadline=deadline,
    )
    return engine, scheduler


def _drain(scheduler, workload):
    for sources, length in workload:
        scheduler.submit(sources, length)
    scheduler.drain()


def bench_faults(
    n: int = FAULT_N,
    degree: int = FAULT_DEGREE,
    lam: int = FAULT_LAM,
    eta: float = FAULT_ETA,
    crash_rates: list[float] | None = None,
    recover_after: int = FAULT_RECOVER_AFTER,
    requests: int = FAULT_REQUESTS,
    k: int = FAULT_K,
    lengths: list[int] | None = None,
    seed: int = FAULT_SEED,
) -> dict:
    """One row per crash rate: miss rate, recovery bill, rebuild speedup."""
    lengths = lengths if lengths is not None else list(FAULT_LENGTHS)
    graph = random_regular_graph(n, degree, seed)
    workload = _workload(graph, k, requests, lengths)

    # Sizing pass: the healthy run's span fixes the fault window and its
    # p99 latency fixes the deadline budget every row is judged against.
    engine, scheduler = _fresh_session(graph, lam=lam, eta=eta, seed=seed, deadline=None)
    base = engine.network.rounds
    _drain(scheduler, workload)
    clean_span = engine.network.rounds - base
    deadline = int(1.5 * scheduler.stats().p99_latency_rounds)

    def _serve_over_faults(rate: float, record_paths: bool):
        engine, scheduler = _fresh_session(
            graph, lam=lam, eta=eta, seed=seed, deadline=deadline, record_paths=record_paths
        )
        start = engine.network.rounds
        if rate > 0:
            schedule = FaultSchedule.sample(
                graph,
                crashes=int(math.ceil(rate * n)),
                start_round=start + 50,
                end_round=start + clean_span,
                recover_after=recover_after,
                seed=seed + 3,
            )
            engine.attach_faults(schedule)
        _drain(scheduler, workload)
        stats = scheduler.stats()
        assert stats.completed == stats.admitted  # degradation, not drops
        return stats, engine.network.rounds - start

    rows = []
    clean_total = None
    for rate in crash_rates if crash_rates is not None else FAULT_CRASH_RATES:
        stats, total_rounds = _serve_over_faults(rate, record_paths=True)
        if rate == 0:
            clean_total = total_rounds
        row = {
            "crash_rate": rate,
            "crashes_fired": stats.crashes_seen,
            "recoveries_fired": stats.recoveries_seen,
            "completed": stats.completed,
            "deadline_misses": stats.deadline_misses,
            "miss_rate": stats.deadline_misses / max(1, stats.completed),
            "ticket_retries": stats.ticket_retries,
            "backoff_waits": stats.backoff_waits,
            "walks_recovered": stats.walks_recovered,
            "walks_restarted": stats.walks_restarted,
            "recovery_rounds": stats.recovery_rounds,
            "total_rounds": total_rounds,
            "round_overhead": total_rounds / max(1, clean_total or total_rounds),
        }
        if rate > 0:
            # Discard baseline: same schedule, no recorded paths — every
            # event dumps the whole pool and restarts in-flight walks.
            base_stats, base_total = _serve_over_faults(rate, record_paths=False)
            row["discard_recovery_rounds"] = base_stats.recovery_rounds
            row["discard_total_rounds"] = base_total
            row["recovery_speedup"] = base_stats.recovery_rounds / max(
                1, stats.recovery_rounds
            )
        rows.append(row)
    return {
        "schema": "bench_fault_recovery/v1",
        "n": n,
        "degree": degree,
        "lam": lam,
        "eta": eta,
        "seed": seed,
        "recover_after": recover_after,
        "requests": requests,
        "k": k,
        "lengths": lengths,
        "deadline": deadline,
        "clean_span": clean_span,
        "rows": rows,
    }


def main(argv: list[str]) -> int:
    section = bench_faults(**QUICK_FAULTS) if "--quick" in argv else bench_faults()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["fault_recovery"] = section
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"crash-fault serving, n={section['n']} regular({section['degree']}), "
        f"λ={section['lam']}, η={section['eta']:g}, "
        f"{section['requests']}×k={section['k']} requests, "
        f"deadline={section['deadline']} rounds:"
    )
    for r in section["rows"]:
        vs = (
            f"  vs discard {r['recovery_speedup']:.1f}x"
            if "recovery_speedup" in r
            else ""
        )
        print(
            f"  crash={r['crash_rate']:.2%}  events {r['crashes_fired']}+{r['recoveries_fired']}  "
            f"misses {r['deadline_misses']}/{r['completed']} ({r['miss_rate']:.0%})  "
            f"recovery {r['recovery_rounds']:>6} rounds  total {r['total_rounds']:>7} "
            f"({r['round_overhead']:.2f}x clean){vs}"
        )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
