"""Multi-tenant serving bench: packed+pipelined cohorts vs. per-request serving.

The PR-7 acceptance shape: on the n=10k random regular graph, a 9-request
3-tenant workload (weights 1:2:4, 3 requests per tenant, mixed lengths)
per k ∈ {16, 64, 256} is served twice —

* **per-request** — cohorts of one (``max_batch_requests=1``): what a
  fairness-first scheduler would cost if it alternated tenants strictly,
  one request per scheduling round, each paying its own setup sweep and
  its own ``height + k`` report convergecast;
* **packed** — walk-count cohort packing (``max_batch_walks = 2.5k``, a
  deliberate non-multiple of k so ticket *splitting* is exercised) with
  the cross-request pipelined report: deficit round robin fills each
  cohort across tenants up to the Σk budget, splitting the ticket at the
  budget edge, the cohort's stitching sweeps merge over one shared BFS
  tree, and ONE ``height + Σk − 1`` convergecast carries every report.

Both sides serve from pools prepared with the same k-enlarged λ, so the
recorded ratio isolates the packing+pipelining regime — fairness no
longer costs batching.  Each row also records a **fairness deviation**
column measured in a separate saturated phase (every tenant kept
backlogged for a fixed tick count): the worst relative deviation of any
tenant's attributed-rounds share from its ``weight / Σ weights`` target.
``tests/test_perf_smoke.py`` keeps a live small-n guard plus a static
≥1.3× check on the committed section::

    PYTHONPATH=src python benchmarks/bench_tenants.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_tenants.py --quick   # tiny config
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.engine import WalkEngine
from repro.graphs import pseudo_diameter, random_regular_graph
from repro.serve import TenantRegistry
from repro.walks.params import many_walks_params

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

TENANT_N = 10_000
TENANT_DEGREE = 4
TENANT_SEED = 1201
TENANT_KS = [16, 64, 256]
TENANT_SPEC = "bronze:1:0,silver:2:0,gold:4:0"
REQUESTS_PER_TENANT = 3
TENANT_LENGTHS = [512, 256, 1024]  # cycled per request: the "mixed" workload
FAIRNESS_TICKS = 12
QUICK_TENANTS = {"n": 256, "degree": 4, "ks": [16], "lengths": [256, 128, 512], "seed": 1201}


def _workload(graph, names, k: int, lengths: list[int]):
    """Deterministic mixed workload: request i -> tenant i mod 3, cycled length."""
    return [
        (
            names[i % len(names)],
            [(i * 37 + j * 13) % graph.n for j in range(k)],
            lengths[i % len(lengths)],
        )
        for i in range(REQUESTS_PER_TENANT * len(names))
    ]


def _fairness_deviation(engine_factory, k: int, length: int, ticks: int) -> dict:
    """Saturated top-up phase: worst relative deviation from weight shares.

    Every tenant's queue is kept at least three tickets deep before each
    tick, so deficit round robin — not arrival luck — decides the split;
    after ``ticks`` cohorts the attributed-rounds shares are compared to
    ``weight / Σ weights``.
    """
    engine = engine_factory()
    reg = TenantRegistry.parse(TENANT_SPEC)
    sched = engine.scheduler(
        tenants=reg,
        max_batch_walks=3 * k,
        pipelined_report=True,
        max_queue_depth=1_000_000,
    )
    n = engine.graph.n
    for t in range(ticks):
        for j, name in enumerate(reg.order):
            while len(sched._queues.get(name, ())) < 3:
                sources = [(t * 101 + j * 59 + i * 17) % n for i in range(k)]
                sched.submit(sources, length, tenant=name)
        sched.tick()
    stats = sched.stats().tenants
    total = sum(s["rounds_attributed"] for s in stats.values()) or 1
    weight_sum = sum(s["weight"] for s in stats.values())
    shares = {name: s["rounds_attributed"] / total for name, s in stats.items()}
    dev = max(
        abs(shares[name] - s["weight"] / weight_sum) / (s["weight"] / weight_sum)
        for name, s in stats.items()
    )
    return {"shares": shares, "max_rel_dev": dev}


def bench_tenants(
    n: int = TENANT_N,
    degree: int = TENANT_DEGREE,
    ks: list[int] | None = None,
    lengths: list[int] | None = None,
    seed: int = TENANT_SEED,
) -> dict:
    """One row per k: per-request vs. packed+pipelined rounds, same workload."""
    graph = random_regular_graph(n, degree, seed)
    lengths = TENANT_LENGTHS if lengths is None else lengths
    d_est = max(1, pseudo_diameter(graph))
    names = TenantRegistry.parse(TENANT_SPEC).order
    rows = []
    for k in ks if ks is not None else TENANT_KS:
        workload = _workload(graph, names, k, lengths)
        lam = many_walks_params(k, max(lengths), d_est, n=graph.n).lam

        def engine_factory():
            engine = WalkEngine(graph, seed=seed, record_paths=False, auto_maintain=False)
            engine.prepare(lam=lam)
            return engine

        def run(**knobs):
            engine = engine_factory()
            sched = engine.scheduler(tenants=TenantRegistry.parse(TENANT_SPEC), **knobs)
            base = engine.network.rounds
            for tenant, srcs, length in workload:
                sched.submit(srcs, length, tenant=tenant)
            sched.drain()
            return engine.network.rounds - base, sched.stats(), engine

        per_request_rounds, _, _ = run(max_batch_requests=1)
        packed_rounds, packed_stats, packed_engine = run(
            max_batch_walks=(5 * k) // 2, pipelined_report=True
        )
        fairness = _fairness_deviation(engine_factory, k, max(lengths), FAIRNESS_TICKS)

        walks_total = len(workload) * k
        rows.append(
            {
                "k": k,
                "requests": len(workload),
                "lengths": [length for _, _, length in workload],
                "lam": lam,
                "per_request_rounds": per_request_rounds,
                "packed_rounds": packed_rounds,
                "rounds_speedup": per_request_rounds / packed_rounds,
                "per_request_throughput_per_1k_rounds": 1000.0 * walks_total / per_request_rounds,
                "packed_throughput_per_1k_rounds": 1000.0 * walks_total / packed_rounds,
                "packed_cohorts": packed_stats.cohorts,
                "cohort_splits": packed_stats.cohort_splits,
                "pipelined_report_rounds": packed_engine.network.ledger.phase_rounds(
                    "serve/report"
                ),
                "fairness_shares": fairness["shares"],
                "fairness_max_rel_dev": fairness["max_rel_dev"],
            }
        )
    return {
        "schema": "bench_multi_tenant/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "tenants": TENANT_SPEC,
        "rows": rows,
    }


def main(argv: list[str]) -> int:
    section = bench_tenants(**QUICK_TENANTS) if "--quick" in argv else bench_tenants()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["multi_tenant"] = section
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"packed+pipelined vs per-request serving, 3 tenants ({section['tenants']}), "
        f"n={section['n']} regular({section['degree']}):"
    )
    for r in section["rows"]:
        print(
            f"  k={r['k']:>4}  λ={r['lam']:>4}  per-request {r['per_request_rounds']:>8} rounds  "
            f"packed {r['packed_rounds']:>8} rounds  ({r['rounds_speedup']:.2f}x)  "
            f"splits {r['cohort_splits']:>3}  fairness dev {r['fairness_max_rel_dev']:.1%}"
        )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
