"""Wall-clock microbenches for the three per-run hot paths.

Unlike the other benches (which measure *simulated rounds*), this one
measures *wall-clock seconds* for the code paths every run pays:

* **Phase-1 token creation** — ``perform_short_walks`` at ``η = 1``,
  ``record_paths=True`` (the columnar handover vs. the legacy per-token
  ``TokenRecord``-object loop, which is timed side-by-side as the
  baseline);
* **CSR construction** — ``Graph.__init__`` from a prebuilt edge array;
* **BFS build** — ``build_bfs_tree`` charged fast path vs. the
  event-driven flood protocol.

Results go to ``BENCH_HOTPATHS.json`` at the repo root in a
machine-readable schema so future PRs have a perf trajectory to compare
against::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py            # full run
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --quick    # tiny sizes

Under pytest the module runs as ``@pytest.mark.slow`` tests (excluded from
tier-1, which only collects ``tests/``; ``tests/test_perf_smoke.py`` keeps
a fast schema/speedup smoke in the gate).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.congest.network import Network
from repro.congest.primitives import build_bfs_tree
from repro.graphs.graph import Graph
from repro.util.rng import make_rng
from repro.walks.short_walks import perform_short_walks, token_counts
from repro.walks.store import TokenRecord, WalkStore

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

SIZES = (1_000, 10_000, 50_000)
QUICK_SIZES = (256, 1_024)
LAM = 10
REPEATS = 3


def torus_edges(rows: int, cols: int) -> np.ndarray:
    """Edge array of a rows×cols torus (4-regular, n = rows·cols)."""
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx, np.roll(idx, -1, axis=1)], axis=-1).reshape(-1, 2)
    down = np.stack([idx, np.roll(idx, -1, axis=0)], axis=-1).reshape(-1, 2)
    return np.concatenate([right, down])


def near_square(n: int) -> tuple[int, int]:
    rows = int(np.sqrt(n))
    while n % rows:
        rows -= 1
    return rows, n // rows


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _seed_style_phase1(network: Network, lam: int, counts: np.ndarray, seed: int) -> dict:
    """The pre-columnar Phase-1 storage loop, re-created as the baseline.

    Runs the identical vectorized stepping, then pays the legacy per-token
    tax: one frozen ``TokenRecord`` plus a path-row copy per token, filed
    into ``(holder, source)``-keyed dict buckets.
    """
    graph = network.graph
    rng = make_rng(seed)
    total = int(counts.sum())
    origins = np.repeat(np.arange(graph.n, dtype=np.int64), counts)
    target_len = lam + rng.integers(0, lam, size=total)
    max_len = int(target_len.max())
    positions = origins.copy()
    paths = np.empty((total, max_len + 1), dtype=np.int64)
    paths[:, 0] = origins
    for step in range(1, max_len + 1):
        active = target_len >= step
        if not np.any(active):
            break
        slots = graph.step_walk_slots(positions[active], rng)
        network.deliver_step(slots, words=2)
        positions[active] = graph.csr_target[slots]
        paths[active, step] = positions[active]
    buckets: dict[tuple[int, int], list[TokenRecord]] = {}
    for i in range(total):
        length = int(target_len[i])
        record = TokenRecord(
            token_id=i,
            source=int(origins[i]),
            length=length,
            destination=int(positions[i]),
            path=paths[i, : length + 1].copy(),
        )
        buckets.setdefault((record.destination, record.source), []).append(record)
    return buckets


def bench_phase1(n: int, *, seed: int = 42) -> dict:
    """Columnar vs. legacy per-object Phase-1 storage at η=1, paths on."""
    graph = Graph(n, torus_edges(*near_square(n)), name=f"torus-{n}")
    network = Network(graph, seed=0)
    counts = token_counts(graph.degrees, 1.0, degree_proportional=True)

    def columnar():
        store = WalkStore()
        perform_short_walks(
            network, store, LAM, make_rng(seed), counts=counts, record_paths=True
        )
        return store

    columnar_s, store = _best_of(columnar)
    legacy_s, _ = _best_of(lambda: _seed_style_phase1(network, LAM, counts, seed))
    return {
        "n": n,
        "tokens": int(counts.sum()),
        "lam": LAM,
        "columnar_seconds": columnar_s,
        "legacy_seconds": legacy_s,
        "speedup": legacy_s / columnar_s,
        "store_unused": store.total_unused(),
    }


def bench_csr(n: int) -> dict:
    """Graph.__init__ (vectorized CSR scatter) from a prebuilt edge array."""
    edges = torus_edges(*near_square(n))
    seconds, graph = _best_of(lambda: Graph(n, edges, name=f"torus-{n}"))
    return {"n": n, "m": int(graph.m), "seconds": seconds}


def bench_bfs(n: int) -> dict:
    """Charged fast-path BFS vs. the event-driven flood protocol."""
    graph = Graph(n, torus_edges(*near_square(n)), name=f"torus-{n}")

    def fast():
        return build_bfs_tree(Network(graph), 0)

    fast_s, tree = _best_of(fast)
    # The protocol run is O(rounds × messages) in Python; keep it to the
    # sizes where it finishes promptly and report None beyond.
    if n <= 10_000:
        protocol_s, _ = _best_of(
            lambda: build_bfs_tree(Network(graph), 0, use_protocol=True), repeats=1
        )
    else:
        protocol_s = None
    return {
        "n": n,
        "height": tree.height,
        "fast_seconds": fast_s,
        "protocol_seconds": protocol_s,
        "speedup": (protocol_s / fast_s) if protocol_s is not None else None,
    }


def run_suite(sizes=SIZES) -> dict:
    results = {
        "schema": "bench_perf_hotpaths/v1",
        "lam": LAM,
        "eta": 1.0,
        "sizes": list(sizes),
        "phase1_token_creation": [],
        "csr_construction": [],
        "bfs_build": [],
    }
    for n in sizes:
        results["phase1_token_creation"].append(bench_phase1(n))
        results["csr_construction"].append(bench_csr(n))
        results["bfs_build"].append(bench_bfs(n))
    return results


# ----------------------------------------------------------------------
# pytest entry points (slow — excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("n", SIZES)
def test_phase1_columnar_beats_legacy(n):
    row = bench_phase1(n)
    assert row["speedup"] >= 5.0, f"phase-1 speedup regressed: {row}"


@pytest.mark.slow
def test_suite_emits_json(tmp_path):
    results = run_suite(sizes=QUICK_SIZES)
    out = tmp_path / "hotpaths.json"
    out.write_text(json.dumps(results))
    assert json.loads(out.read_text())["schema"] == "bench_perf_hotpaths/v1"


def main(argv: list[str]) -> int:
    sizes = QUICK_SIZES if "--quick" in argv else SIZES
    results = run_suite(sizes=sizes)
    # Preserve sections other benches own (e.g. bench_engine_reuse.py's
    # "engine_reuse") — this file is the shared perf trajectory record.
    merged = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    merged.update(results)
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    for row in results["phase1_token_creation"]:
        print(
            f"phase1 n={row['n']:>6}: columnar {row['columnar_seconds']*1e3:8.1f} ms  "
            f"legacy {row['legacy_seconds']*1e3:8.1f} ms  speedup {row['speedup']:.1f}x"
        )
    for row in results["csr_construction"]:
        print(f"csr    n={row['n']:>6}: {row['seconds']*1e3:8.1f} ms  (m={row['m']})")
    for row in results["bfs_build"]:
        proto = f"{row['protocol_seconds']*1e3:8.1f} ms" if row["protocol_seconds"] else "   (skipped)"
        print(f"bfs    n={row['n']:>6}: fast {row['fast_seconds']*1e3:8.1f} ms  protocol {proto}")
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
