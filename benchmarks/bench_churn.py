"""Graph-churn bench: incremental invalidate+regenerate vs. full re-prepare.

The PR-5 acceptance shape: on the n=10k random regular graph, a batched
churn event touching ~1% of the edges (half deletions, half insertions,
connectivity-preserving) hits a warm serving session two ways —

* **incremental** — ``engine.apply_churn(delta)``: one vectorized path
  scan evicts exactly the pooled tokens whose recorded law the churn
  broke, shard quotas re-derive from the new degree profile, and the
  affected shards top back up in one batched GET-MORE-WALKS sweep billed
  to ``"pool-refill/churn"``;
* **rebuild** — the naive baseline: discard the pool and re-run Phase 1
  on the post-churn graph (one fresh ``prepare()``, the cost every
  pre-dynamic session paid for *any* topology change).

Both sides use the same λ/η and are measured in *simulated rounds* — the
paper's complexity measure, deterministic at a fixed seed.  The win is
structural: rebuild work scales with the whole Θ(η·m) token population,
incremental work with the evicted fraction only (short tokens keep that
fraction small), and the regeneration sweep's per-edge distinct-source
charging (the GET-MORE-WALKS count-aggregation trick) beats Phase 1's raw
token-load congestion on top.  ``tests/test_perf_smoke.py`` keeps a live
small-n guard plus a static ≥2× check on the committed 1%-churn row::

    PYTHONPATH=src python benchmarks/bench_churn.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_churn.py --quick   # tiny config
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.dynamic import sample_churn_delta
from repro.engine import WalkEngine
from repro.graphs import random_regular_graph
from repro.util.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

CHURN_N = 10_000
CHURN_DEGREE = 4
CHURN_LAM = 5
CHURN_ETA = 4.0
CHURN_SEED = 1201
CHURN_FRACTIONS = [0.005, 0.01, 0.02]
QUICK_CHURN = {"n": 512, "fractions": [0.01], "seed": 1201}


def _churned_delta(graph, fraction: float, seed: int):
    """The benched churn event: ~fraction·m edges, half deleted half inserted."""
    changes = max(2, int(round(fraction * graph.m)))
    return sample_churn_delta(
        graph, make_rng(seed + 7), deletes=changes // 2, inserts=changes - changes // 2
    )


def bench_churn(
    n: int = CHURN_N,
    degree: int = CHURN_DEGREE,
    lam: int = CHURN_LAM,
    eta: float = CHURN_ETA,
    fractions: list[float] | None = None,
    seed: int = CHURN_SEED,
) -> dict:
    """One row per churn fraction: incremental vs. rebuild simulated rounds."""
    rows = []
    for fraction in fractions if fractions is not None else CHURN_FRACTIONS:
        # Incremental: warm session absorbs the delta in place.
        graph = random_regular_graph(n, degree, seed)
        engine = WalkEngine(graph, seed=seed, record_paths=True, eta=eta, auto_maintain=False)
        engine.prepare(lam=lam)
        tokens_before = engine.pool.store.total_unused()
        delta = _churned_delta(graph, fraction, seed)
        base = engine.network.rounds
        report = engine.apply_churn(delta)
        incremental_rounds = engine.network.rounds - base

        # Rebuild baseline: identical post-churn graph, pool discarded,
        # Phase 1 re-run from scratch (plus its setup BFS — the diameter
        # estimate a fresh preparation always pays).
        graph2 = random_regular_graph(n, degree, seed)
        graph2.apply_delta(_churned_delta(graph2, fraction, seed))
        baseline = WalkEngine(graph2, seed=seed, record_paths=True, eta=eta, auto_maintain=False)
        base2 = baseline.network.rounds
        baseline.prepare(lam=lam)
        rebuild_rounds = baseline.network.rounds - base2

        rows.append(
            {
                "churn_fraction": fraction,
                "edges_changed": delta.num_changes,
                "edges_deleted": int(len(delta.delete_edges)),
                "edges_inserted": int(len(delta.insert_edges)),
                "mutated_nodes": report.mutated_nodes,
                "tokens_before": tokens_before,
                "tokens_evicted": report.tokens_evicted,
                "evicted_fraction": report.tokens_evicted / max(1, tokens_before),
                "tokens_regenerated": report.tokens_regenerated,
                "incremental_rounds": incremental_rounds,
                "rebuild_rounds": rebuild_rounds,
                "rounds_speedup": rebuild_rounds / max(1, incremental_rounds),
            }
        )
    return {
        "schema": "bench_graph_churn/v1",
        "n": n,
        "degree": degree,
        "lam": lam,
        "eta": eta,
        "seed": seed,
        "rows": rows,
    }


def main(argv: list[str]) -> int:
    section = bench_churn(**QUICK_CHURN) if "--quick" in argv else bench_churn()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["graph_churn"] = section
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"incremental churn vs full re-prepare, n={section['n']} "
        f"regular({section['degree']}), λ={section['lam']}, η={section['eta']:g}:"
    )
    for r in section["rows"]:
        print(
            f"  churn={r['churn_fraction']:.2%} ({r['edges_changed']} edges)  "
            f"evicted {r['tokens_evicted']}/{r['tokens_before']} "
            f"({r['evicted_fraction']:.0%})  incremental {r['incremental_rounds']:>5} rounds  "
            f"rebuild {r['rebuild_rounds']:>5} rounds  ({r['rounds_speedup']:.2f}x)"
        )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
