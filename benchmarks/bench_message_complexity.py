"""E11 — message complexity (the §5 trade-off, measured).

The concluding remarks concede the trade: "While our algorithms have good
amortized message complexity over several walks, it would be nice to come
up with algorithms that are round efficient and yet have smaller message
complexity."  This bench quantifies both halves:

* a *single* stitched walk moves far more messages than the naive token
  walk (Phase 1 makes every node work), even while using far fewer rounds;
* amortized over ``k`` walks sharing one Phase 1, messages/walk falls
  steadily, while naive messages/walk stays ℓ.
"""

from __future__ import annotations


from repro.congest import Network
from repro.graphs import hypercube_graph
from repro.util.tables import render_table
from repro.walks import many_random_walks, naive_random_walk, single_random_walk

LENGTH = 16000


def test_e11_single_walk_tradeoff(benchmark, reporter):
    g = hypercube_graph(7)
    net_new = Network(g, seed=0)
    new = single_random_walk(g, 0, LENGTH, seed=91, network=net_new, record_paths=False)
    net_naive = Network(g, seed=0)
    naive = naive_random_walk(g, 0, LENGTH, seed=91, network=net_naive, record_paths=False)
    rows = [
        ("SINGLE-RANDOM-WALK", new.rounds, net_new.messages_sent),
        ("naive token walk", naive.rounds, net_naive.messages_sent),
        (
            "ratio (new/naive)",
            round(new.rounds / naive.rounds, 3),
            round(net_new.messages_sent / net_naive.messages_sent, 1),
        ),
    ]
    table = render_table(
        ["algorithm", "rounds", "messages"],
        rows,
        title=f"E11 the §5 trade-off on hypercube(7), ℓ={LENGTH}: rounds down, messages up",
    )
    reporter.emit("E11_messages", table)

    assert new.rounds < naive.rounds / 2
    assert net_new.messages_sent > 3 * net_naive.messages_sent

    benchmark.pedantic(
        lambda: naive_random_walk(g, 0, LENGTH, seed=91, record_paths=False),
        rounds=3,
        iterations=1,
    )


def test_e11_amortization_over_k_walks(benchmark, reporter):
    g = hypercube_graph(7)
    length = 24000
    rows = []
    per_walk = []
    for k in [1, 2, 4, 8]:
        net = Network(g, seed=0)
        res = many_random_walks(g, [0] * k, length, seed=93, network=net)
        messages_per_walk = net.messages_sent / k
        rounds_per_walk = res.rounds / k
        per_walk.append(messages_per_walk)
        rows.append(
            (
                k,
                res.mode,
                net.messages_sent,
                round(messages_per_walk),
                round(rounds_per_walk),
                length,  # naive messages per walk = ℓ
            )
        )
    table = render_table(
        ["k", "mode", "total messages", "messages/walk", "rounds/walk", "naive msgs/walk"],
        rows,
        title=f"E11 amortized message complexity, hypercube(7), ℓ={length}",
    )
    reporter.emit("E11_messages", table)

    # Sharing one Phase 1 amortizes: messages/walk strictly decreases in k.
    assert all(a > b for a, b in zip(per_walk, per_walk[1:])), per_walk
    # And rounds/walk also falls (the Theorem 2.8 batching gain).
    assert rows[-1][4] < rows[0][4]

    benchmark.pedantic(
        lambda: many_random_walks(g, [0] * 4, 4000, seed=93),
        rounds=3,
        iterations=1,
    )
