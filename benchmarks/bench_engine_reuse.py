"""Amortized cost of engine reuse vs. fresh one-shot calls.

The point of the ``WalkEngine`` session API is that the Θ(η·m) Phase-1
token preparation is paid once per *session*, not once per *query*.  This
bench serves ``QUERIES`` walk requests two ways:

* **fresh** — one ``single_random_walk`` call per query (the pre-engine
  shape: every call rebuilds the network, the BFS cache, and a full
  Phase-1 pool);
* **reused** — one ``WalkEngine`` serving all queries from its persistent
  pool, refilling dry connectors via GET-MORE-WALKS.

It reports wall-clock seconds and *simulated rounds* for both, and appends
an ``engine_reuse`` section to ``BENCH_HOTPATHS.json`` (the repo's perf
trajectory record, shared with ``bench_perf_hotpaths.py``)::

    PYTHONPATH=src python benchmarks/bench_engine_reuse.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine_reuse.py --quick    # tiny config

Under pytest the module's acceptance checks are ``@pytest.mark.slow``
(wall-clock assertions never gate tier-1 on a loaded machine);
``tests/test_perf_smoke.py`` keeps a schema check on the committed JSON in
the fast gate.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.engine import WalkEngine
from repro.graphs import torus_graph
from repro.walks import single_random_walk

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

QUERIES = 100
ROWS, COLS = 16, 16
LENGTH = 2048
SEED = 42

QUICK = {"queries": 10, "rows": 8, "cols": 8, "length": 256}


def bench_engine_reuse(
    queries: int = QUERIES,
    rows: int = ROWS,
    cols: int = COLS,
    length: int = LENGTH,
    seed: int = SEED,
) -> dict:
    """Run the fresh-vs-reused comparison; returns the JSON row."""
    graph = torus_graph(rows, cols)
    sources = [(i * 7) % graph.n for i in range(queries)]

    t0 = time.perf_counter()
    fresh_rounds = 0
    for i, source in enumerate(sources):
        res = single_random_walk(graph, source, length, seed=seed + i, record_paths=False)
        fresh_rounds += res.rounds
    fresh_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = WalkEngine(graph, seed=seed, record_paths=False)
    for source in sources:
        engine.walk(source, length)
    engine_seconds = time.perf_counter() - t0
    stats = engine.stats()

    return {
        "n": graph.n,
        "length": length,
        "queries": queries,
        "fresh_seconds": fresh_seconds,
        "engine_seconds": engine_seconds,
        "wallclock_speedup": fresh_seconds / engine_seconds,
        "fresh_rounds": fresh_rounds,
        "engine_rounds": stats.rounds,
        "rounds_speedup": fresh_rounds / stats.rounds,
        "fresh_seconds_per_query": fresh_seconds / queries,
        "engine_seconds_per_query": engine_seconds / queries,
        "full_preparations": stats.full_preparations,
        "refills": stats.refills,
        "tokens_prepared": stats.tokens_prepared,
        "tokens_consumed": stats.tokens_consumed,
    }


# ----------------------------------------------------------------------
# pytest entry points (slow — excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_engine_reuse_beats_fresh_calls():
    row = bench_engine_reuse()
    assert row["full_preparations"] == 1, f"pool was rebuilt mid-stream: {row}"
    assert row["engine_seconds"] < row["fresh_seconds"], f"reuse lost on wall-clock: {row}"
    assert row["engine_rounds"] < row["fresh_rounds"], f"reuse lost on simulated rounds: {row}"


@pytest.mark.slow
def test_quick_config_schema():
    row = bench_engine_reuse(**QUICK)
    assert row["queries"] == QUICK["queries"]
    assert json.loads(json.dumps(row)) == row


def main(argv: list[str]) -> int:
    row = bench_engine_reuse(**QUICK) if "--quick" in argv else bench_engine_reuse()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["engine_reuse"] = row
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"{row['queries']} queries of length {row['length']} on n={row['n']}:\n"
        f"  fresh calls : {row['fresh_seconds']:8.2f} s   {row['fresh_rounds']:>9} rounds\n"
        f"  engine reuse: {row['engine_seconds']:8.2f} s   {row['engine_rounds']:>9} rounds\n"
        f"  speedup     : {row['wallclock_speedup']:8.1f} x   {row['rounds_speedup']:9.1f} x\n"
        f"  preparations: {row['full_preparations']}  refills: {row['refills']}  "
        f"tokens {row['tokens_consumed']}/{row['tokens_prepared']}"
    )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
