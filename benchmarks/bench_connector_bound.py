"""E4 — Lemma 2.7: connector appearances ≈ visits/λ, and the randomization
ablation.

Two experiments:

1. Under the paper's randomized short-walk lengths ([λ, 2λ−1]), a node
   visited ``t`` times appears as a connector ``O(t·log²n/λ)`` times — the
   measured worst ratio ``C(y)·λ/t(y)`` stays small across topologies.
2. **Ablation**: with *fixed*-length short walks (the PODC'09 style), walks
   on an even cycle synchronize with the topology's period, so connector
   mass concentrates on few nodes.  The paper's Lemma 2.7 proof calls out
   exactly this periodicity risk ("there might be some periodicity that
   results in the same node being visited multiple times but exactly at
   λ-intervals").  We measure the concentration (max connector share) both
   ways and assert randomization reduces it.
"""

from __future__ import annotations

import math
from collections import Counter


from repro.graphs import cycle_graph, torus_graph
from repro.util.tables import render_table
from repro.walks import connector_stats, single_random_walk
from repro.walks.podc09 import podc09_random_walk

LENGTH = 3000


def test_e4_connector_ratio_bounded(benchmark, reporter):
    rows = []
    for name, factory in [
        ("cycle(32)", lambda: cycle_graph(32)),
        ("torus(6x6)", lambda: torus_graph(6, 6)),
    ]:
        g = factory()
        worst = 0.0
        total_connectors = 0
        for seed in range(6):
            res = single_random_walk(g, 0, LENGTH, seed=seed)
            stats = connector_stats(g, res.positions, res.connectors, res.lam)
            worst = max(worst, stats.worst_ratio)
            total_connectors += stats.total_connectors
        bound = math.log(g.n) ** 2
        rows.append((name, round(worst, 2), round(bound, 1), total_connectors // 6))
    table = render_table(
        ["graph", "worst C(y)·λ/t(y)", "lemma bound (ln²n)", "avg #connectors"],
        rows,
        title=f"E4 Lemma 2.7 connector bound, ℓ={LENGTH}, randomized lengths",
    )
    reporter.emit("E4_connector_bound", table)

    for row in rows:
        assert row[1] <= 6 * max(row[2], 4.0), row

    g = torus_graph(6, 6)
    benchmark.pedantic(
        lambda: single_random_walk(g, 0, LENGTH, seed=0),
        rounds=3,
        iterations=1,
    )


def _max_connector_share(result) -> float:
    counts = Counter(result.connectors)
    total = sum(counts.values())
    return max(counts.values()) / total if total else 0.0


def test_e4_ablation_fixed_vs_randomized_lengths(benchmark, reporter):
    """Periodicity ablation on an even cycle (period-2 structure)."""
    g = cycle_graph(32)
    lam = 8
    trials = 12
    fixed_shares = []
    random_shares = []
    fixed_conc = Counter()
    random_conc = Counter()
    for seed in range(trials):
        randomized = single_random_walk(g, 0, LENGTH, seed=seed, lam=lam)
        fixed = podc09_random_walk(g, 0, LENGTH, seed=seed, lam=lam, eta=4.0)
        random_shares.append(_max_connector_share(randomized))
        fixed_shares.append(_max_connector_share(fixed))
        random_conc.update(randomized.connectors)
        fixed_conc.update(fixed.connectors)

    # Parity concentration: with fixed even λ on a bipartite cycle, every
    # connector stays on the source's side.  Randomized lengths spread
    # across both parities.
    fixed_parity = sum(c for node, c in fixed_conc.items() if node % 2 == 0) / max(
        sum(fixed_conc.values()), 1
    )
    random_parity = sum(c for node, c in random_conc.items() if node % 2 == 0) / max(
        sum(random_conc.values()), 1
    )
    rows = [
        ("fixed λ (PODC'09 style)", round(sum(fixed_shares) / trials, 3), round(fixed_parity, 3)),
        ("randomized [λ,2λ)", round(sum(random_shares) / trials, 3), round(random_parity, 3)),
    ]
    table = render_table(
        ["short-walk lengths", "avg max connector share", "even-parity connector mass"],
        rows,
        title=f"E4 ablation on cycle(32), λ={lam}: randomization kills periodicity",
    )
    reporter.emit("E4_connector_bound", table)

    assert fixed_parity > 0.99  # fixed even λ is trapped on one parity class
    assert random_parity < 0.9  # randomization escapes it

    benchmark.pedantic(
        lambda: podc09_random_walk(g, 0, LENGTH, seed=1, lam=lam, eta=4.0),
        rounds=3,
        iterations=1,
    )
