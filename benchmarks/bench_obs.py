"""Observability overhead bench: the zero-cost-when-off contract, measured.

One scheduled serving workload (n=2000 random regular graph, 24 mixed
k=8 requests through walk-count-packed pipelined cohorts) is served
three times from identical seeds:

* **baseline** — observability never attached: ``ledger.observer`` stays
  ``None``, so the hot charge path pays exactly one ``is not None`` test;
* **disabled** — ``attach_observability()`` with no sinks: the inert
  :class:`~repro.obs.probe.Probe` is installed as the ledger observer,
  so every charge/push/pop additionally pays the probe's early-return
  hook — the cost of *having* the instrumentation wired;
* **traced** — a default-ring :class:`~repro.obs.trace.Tracer` plus a
  :class:`~repro.obs.metrics.MetricsRegistry`: full span construction,
  context merging, and counter updates on every charge.

Wall times are best-of-``REPEATS`` via the audited
:func:`repro.obs.clock.perf_counter` wrapper; the simulated round totals
are asserted identical across all three configs in-bench (the passivity
contract, cross-checked here so a perf run can never silently diverge).
``tests/test_perf_smoke.py`` guards the *committed* section — disabled
≤ 3% over baseline, traced ≤ 25% at the default ring size — plus a live
schema smoke at quick scale::

    PYTHONPATH=src python benchmarks/bench_obs.py           # full workload
    PYTHONPATH=src python benchmarks/bench_obs.py --quick   # tiny config
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.engine import WalkEngine
from repro.graphs import random_regular_graph
from repro.obs import DEFAULT_RING_SIZE, HeatmapSink, MetricsRegistry, SloMonitor, SloSpec, Tracer
from repro.obs.clock import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

OBS_N = 2_000
OBS_DEGREE = 4
OBS_SEED = 907
OBS_REQUESTS = 48
OBS_K = 8
OBS_LENGTHS = [256, 512, 128]  # cycled per request
REPEATS = 9
#: The committed guards (mirrored in tests/test_perf_smoke.py).
LIMIT_DISABLED = 0.03
LIMIT_TRACED = 0.25
#: PR-10 guards: congestion cartography + streaming SLO windows stay
#: within these wall-clock envelopes while conserving every message.
LIMIT_DETACHED = 0.03
LIMIT_HEATMAP = 0.35
LIMIT_SLO = 0.35

QUICK_OBS = {"n": 256, "requests": 6, "k": 4, "lengths": [128], "repeats": 2}


def _serve_once(graph, *, seed, requests, k, lengths, attach):
    """One full serve session; returns (wall_seconds, rounds, engine)."""
    engine = WalkEngine(graph, seed=seed, record_paths=False, auto_maintain=False)
    sinks = attach(engine)
    start = perf_counter()
    sched = engine.scheduler(max_batch_walks=3 * k, pipelined_report=True)
    n = graph.n
    for i in range(requests):
        sources = [(i * 37 + j * 13) % n for j in range(k)]
        sched.submit(sources, lengths[i % len(lengths)])
    sched.drain()
    elapsed = perf_counter() - start
    del sinks
    return elapsed, engine.network.rounds, engine


def bench_obs_overhead(
    n: int = OBS_N,
    degree: int = OBS_DEGREE,
    seed: int = OBS_SEED,
    requests: int = OBS_REQUESTS,
    k: int = OBS_K,
    lengths: list[int] | None = None,
    repeats: int = REPEATS,
) -> dict:
    """Best-of-``repeats`` wall time per config, interleaved to share cache state."""
    graph = random_regular_graph(n, degree, seed)
    lengths = OBS_LENGTHS if lengths is None else lengths
    configs = {
        "baseline": lambda engine: None,
        "disabled": lambda engine: engine.attach_observability(),
        "traced": lambda engine: engine.attach_observability(
            tracer=Tracer(), metrics=MetricsRegistry()
        ),
    }
    best: dict[str, float] = {name: float("inf") for name in configs}
    rounds: dict[str, int] = {}
    last_engine = None
    kwargs = dict(seed=seed, requests=requests, k=k, lengths=lengths)
    # Interleave configs within each repetition so cache/allocator drift
    # hits all three equally instead of biasing whichever runs last.
    for _ in range(repeats):
        for name, attach in configs.items():
            elapsed, r, engine = _serve_once(graph, attach=attach, **kwargs)
            best[name] = min(best[name], elapsed)
            rounds[name] = r
            if name == "traced":
                last_engine = engine
    assert len(set(rounds.values())) == 1, f"observer perturbed the simulation: {rounds}"
    probe = last_engine.obs
    tracer, metrics = probe.tracer, probe.metrics
    return {
        "schema": "bench_obs_overhead/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "requests": requests,
        "k": k,
        "lengths": lengths,
        "repeats": repeats,
        "ring_size": DEFAULT_RING_SIZE,
        "rounds": rounds["baseline"],
        "baseline_s": best["baseline"],
        "disabled_s": best["disabled"],
        "traced_s": best["traced"],
        "overhead_disabled": best["disabled"] / best["baseline"] - 1.0,
        "overhead_traced": best["traced"] / best["baseline"] - 1.0,
        "spans": tracer.emitted,
        "spans_dropped": tracer.dropped,
        "metrics_series": len(metrics),
        "limits": {"disabled": LIMIT_DISABLED, "traced": LIMIT_TRACED},
    }


def bench_congestion_heatmap(
    n: int = OBS_N,
    degree: int = OBS_DEGREE,
    seed: int = OBS_SEED,
    requests: int = OBS_REQUESTS,
    k: int = OBS_K,
    lengths: list[int] | None = None,
    repeats: int = REPEATS,
) -> dict:
    """Per-edge attribution overhead + in-bench conservation audit.

    Three configs from identical seeds: never-attached baseline, an
    inert ``attach_observability()`` (the detached staging guard on the
    charge path), and a live :class:`HeatmapSink`.  Beyond the wall
    clock, the bench asserts the PR-10 conservation identity on the
    heatmapped run: every ledger phase's messages are fully attributed
    (``located + retired + residual == messages``) with zero residual,
    and the per-edge congestion maxima reproduce the ledger scalar.
    """
    graph = random_regular_graph(n, degree, seed)
    lengths = OBS_LENGTHS if lengths is None else lengths
    configs = {
        "baseline": lambda engine: None,
        "detached": lambda engine: engine.attach_observability(),
        "heatmap": lambda engine: engine.attach_observability(heatmap=HeatmapSink()),
    }
    best: dict[str, float] = {name: float("inf") for name in configs}
    rounds: dict[str, int] = {}
    last_engine = None
    kwargs = dict(seed=seed, requests=requests, k=k, lengths=lengths)
    for _ in range(repeats):
        for name, attach in configs.items():
            elapsed, r, engine = _serve_once(graph, attach=attach, **kwargs)
            best[name] = min(best[name], elapsed)
            rounds[name] = r
            if name == "heatmap":
                last_engine = engine
    assert len(set(rounds.values())) == 1, f"observer perturbed the simulation: {rounds}"
    heatmap = last_engine.obs.heatmap
    ledger = last_engine.network.ledger
    for phase, stats in ledger.phases.items():
        assert heatmap.attributed_messages(phase) == stats.messages, phase
        assert heatmap.residual_messages(phase) == 0, phase
    assert heatmap.messages_total == ledger.messages
    assert heatmap.max_edge_congestion() == ledger.max_congestion
    return {
        "schema": "bench_congestion_heatmap/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "requests": requests,
        "k": k,
        "lengths": lengths,
        "repeats": repeats,
        "rounds": rounds["baseline"],
        "baseline_s": best["baseline"],
        "detached_s": best["detached"],
        "heatmap_s": best["heatmap"],
        "overhead_detached": best["detached"] / best["baseline"] - 1.0,
        "overhead_heatmap": best["heatmap"] / best["baseline"] - 1.0,
        "messages": heatmap.messages_total,
        "located_messages": heatmap.located_messages(),
        "residual_messages": heatmap.residual_messages(),
        "n_slots": heatmap.n_slots,
        "max_edge_congestion": heatmap.max_edge_congestion(),
        "limits": {"detached": LIMIT_DETACHED, "heatmap": LIMIT_HEATMAP},
    }


def _slo_monitor() -> SloMonitor:
    return SloMonitor(
        specs=[
            SloSpec.parse("name=lat,metric=latency,target=4096,objective=0.25,window=8"),
            SloSpec.parse("name=rej,metric=reject,objective=0.01,window=8"),
        ]
    )


def bench_slo_window(
    n: int = OBS_N,
    degree: int = OBS_DEGREE,
    seed: int = OBS_SEED,
    requests: int = OBS_REQUESTS,
    k: int = OBS_K,
    lengths: list[int] | None = None,
    repeats: int = REPEATS,
) -> dict:
    """Streaming SLO monitor overhead: sliding windows + burn-rate rules.

    Same interleaved best-of harness: never-attached baseline, inert
    attach, and a :class:`SloMonitor` carrying a latency burn-rate rule
    and a reject-rate rule.  Every scheduler tick folds admit/complete
    events into fixed-bucket digests and rolls the per-tenant windows;
    the simulated rounds must stay identical (the monitor only reads).
    """
    graph = random_regular_graph(n, degree, seed)
    lengths = OBS_LENGTHS if lengths is None else lengths
    configs = {
        "baseline": lambda engine: None,
        "detached": lambda engine: engine.attach_observability(),
        "slo": lambda engine: engine.attach_observability(slo=_slo_monitor()),
    }
    best: dict[str, float] = {name: float("inf") for name in configs}
    rounds: dict[str, int] = {}
    last_engine = None
    kwargs = dict(seed=seed, requests=requests, k=k, lengths=lengths)
    for _ in range(repeats):
        for name, attach in configs.items():
            elapsed, r, engine = _serve_once(graph, attach=attach, **kwargs)
            best[name] = min(best[name], elapsed)
            rounds[name] = r
            if name == "slo":
                last_engine = engine
    assert len(set(rounds.values())) == 1, f"observer perturbed the simulation: {rounds}"
    slo = last_engine.obs.slo
    assert slo.ticks_closed > 0 and slo.events > 0
    return {
        "schema": "bench_slo_window/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "requests": requests,
        "k": k,
        "lengths": lengths,
        "repeats": repeats,
        "rounds": rounds["baseline"],
        "baseline_s": best["baseline"],
        "detached_s": best["detached"],
        "slo_s": best["slo"],
        "overhead_detached": best["detached"] / best["baseline"] - 1.0,
        "overhead_slo": best["slo"] / best["baseline"] - 1.0,
        "ticks_closed": slo.ticks_closed,
        "events": slo.events,
        "alerts": len(slo.alerts),
        "p95_latency_rounds": slo.percentile("*all*", 0.95),
        "limits": {"detached": LIMIT_DETACHED, "slo": LIMIT_SLO},
    }


def main(argv: list[str]) -> int:
    kwargs = QUICK_OBS if "--quick" in argv else {}
    section = bench_obs_overhead(**kwargs)
    heat = bench_congestion_heatmap(**kwargs)
    slo = bench_slo_window(**kwargs)
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["obs_overhead"] = section
    results["congestion_heatmap"] = heat
    results["slo_window"] = slo
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"observability overhead, n={section['n']} regular({section['degree']}), "
        f"{section['requests']} requests x k={section['k']} "
        f"(best of {section['repeats']}):"
    )
    print(
        f"  baseline {section['baseline_s'] * 1e3:8.1f} ms   "
        f"disabled {section['disabled_s'] * 1e3:8.1f} ms ({section['overhead_disabled']:+.1%})   "
        f"traced {section['traced_s'] * 1e3:8.1f} ms ({section['overhead_traced']:+.1%})"
    )
    print(
        f"  {section['spans']} spans ({section['spans_dropped']} dropped, "
        f"ring {section['ring_size']}), {section['metrics_series']} metric series, "
        f"{section['rounds']} simulated rounds in every config"
    )
    print("congestion heatmap (per-edge attribution, conservation audited):")
    print(
        f"  baseline {heat['baseline_s'] * 1e3:8.1f} ms   "
        f"detached {heat['detached_s'] * 1e3:8.1f} ms ({heat['overhead_detached']:+.1%})   "
        f"heatmap {heat['heatmap_s'] * 1e3:8.1f} ms ({heat['overhead_heatmap']:+.1%})"
    )
    print(
        f"  {heat['messages']} messages attributed over {heat['n_slots']} edge slots, "
        f"residual {heat['residual_messages']}, max edge congestion "
        f"{heat['max_edge_congestion']}"
    )
    print("slo window (sliding digests + burn-rate rules per tick):")
    print(
        f"  baseline {slo['baseline_s'] * 1e3:8.1f} ms   "
        f"detached {slo['detached_s'] * 1e3:8.1f} ms ({slo['overhead_detached']:+.1%})   "
        f"slo {slo['slo_s'] * 1e3:8.1f} ms ({slo['overhead_slo']:+.1%})"
    )
    print(
        f"  {slo['events']} events over {slo['ticks_closed']} ticks, "
        f"{slo['alerts']} alert transitions, p95 latency "
        f"{slo['p95_latency_rounds']} rounds"
    )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
