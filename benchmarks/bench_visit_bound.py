"""E3 — Lemma 2.6: no node is visited more than Õ(d(x)·√ℓ) times.

Measures, across topologies, the normalized visit ratio
``max_y N(y) / (d(y)·√(ℓ+1))`` over long walks.  The lemma bounds it by
``24·log n`` w.h.p. for any graph; the paper also notes tightness on the
line ("consider a line and a walk of length n") — so the path's ratio must
stay Θ(1) while expanders sit far lower.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs import (
    cycle_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    torus_graph,
)
from repro.util.rng import derive_rng
from repro.util.tables import render_table
from repro.walks import max_visit_ratio

FAMILIES = [
    ("path(64)", lambda: path_graph(64)),
    ("cycle(64)", lambda: cycle_graph(64)),
    ("torus(8x8)", lambda: torus_graph(8, 8)),
    ("hypercube(6)", lambda: hypercube_graph(6)),
    ("random_regular(64,4)", lambda: random_regular_graph(64, 4, 2)),
    ("lollipop(16,16)", lambda: lollipop_graph(16, 16)),
]

LENGTH = 4096
TRIALS = 8


def test_e3_visit_ratio_table(benchmark, reporter):
    rows = []
    ratios = {}
    for name, factory in FAMILIES:
        g = factory()
        worst = 0.0
        worst_node = -1
        for t in range(TRIALS):
            rng = derive_rng(97, name, t)
            traj = np.asarray(g.walk(0, LENGTH, rng))
            ratio, node = max_visit_ratio(g, [traj])
            if ratio > worst:
                worst, worst_node = ratio, node
        bound_ratio = 24 * math.log(g.n)
        ratios[name] = worst
        rows.append((name, g.n, round(worst, 3), worst_node, round(bound_ratio, 1)))
    table = render_table(
        ["graph", "n", "max N(y)/(d(y)√(ℓ+1))", "argmax node", "lemma bound (24 ln n)"],
        rows,
        title=f"E3 Lemma 2.6 visit bound, ℓ={LENGTH}, {TRIALS} trials",
    )
    reporter.emit("E3_visit_bound", table)

    # Bound holds everywhere, and with big margin on expanders.
    for name, _ in FAMILIES:
        g_n = dict((r[0], r[1]) for r in rows)[name]
        assert ratios[name] <= 24 * math.log(g_n)
    # Tightness on the path: ratio is a genuine constant, not vanishing.
    assert ratios["path(64)"] > 0.35
    # Expanders are far from the worst case.
    assert ratios["random_regular(64,4)"] < ratios["path(64)"]

    g = torus_graph(8, 8)
    benchmark.pedantic(
        lambda: max_visit_ratio(g, [np.asarray(g.walk(0, LENGTH, derive_rng(1, "b")))]),
        rounds=3,
        iterations=1,
    )


def test_e3_scaling_in_length(benchmark, reporter):
    """N(y)·/(d√ℓ) stays bounded as ℓ grows — the √ℓ dependence is right."""
    g = path_graph(48)
    rows = []
    for length in [512, 2048, 8192, 32768]:
        worst = 0.0
        for t in range(4):
            rng = derive_rng(13, length, t)
            traj = np.asarray(g.walk(0, length, rng))
            ratio, _ = max_visit_ratio(g, [traj])
            worst = max(worst, ratio)
        rows.append((length, round(worst, 3)))
    table = render_table(
        ["length", "max normalized visit ratio"],
        rows,
        title="E3 ratio vs ℓ on path(48) — flat means visits track d(y)·√ℓ",
    )
    reporter.emit("E3_visit_bound", table)

    values = [r[1] for r in rows]
    # Bounded band: no systematic growth with ℓ (allow 4x noise).
    assert max(values) / min(values) < 4.0

    benchmark.pedantic(
        lambda: g.walk(0, 8192, derive_rng(2, "walk")),
        rounds=3,
        iterations=1,
    )
