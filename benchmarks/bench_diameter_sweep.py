"""E10 — the D-dependence of Õ(√(ℓD)) (concluding remarks).

The paper's closing section notes "the dependence on the diameter D is
still not tight".  This bench measures it: a fixed-length walk on
elongating tori (torus(4, c) has D = 2 + c/2 with n growing only linearly)
and a power-law fit of rounds vs D.  The algorithm's √D prediction shows
as an exponent near 0.5; the naive baseline is D-independent (exponent 0).

Also sweeps λ around its default at fixed (ℓ, D) to exhibit the
``Phase1 ∝ λ`` vs ``stitching ∝ ℓD/λ`` tradeoff that produces the √(ℓD)
optimum (the cost structure behind Theorem 2.5's parameter choice).
"""

from __future__ import annotations


from repro.graphs import diameter, torus_graph
from repro.util.fitting import fit_power_law
from repro.util.tables import render_table
from repro.walks import naive_random_walk, single_random_walk

LENGTH = 8000


def test_e10_diameter_dependence(benchmark, reporter):
    rows = []
    ds, rounds_list = [], []
    for cols in [8, 16, 32, 64, 128]:
        g = torus_graph(4, cols)
        d = diameter(g)
        res = single_random_walk(g, 0, LENGTH, seed=83, record_paths=False)
        rows.append((g.name, g.n, d, res.rounds, res.lam))
        ds.append(d)
        rounds_list.append(res.rounds)
    fit = fit_power_law(ds, rounds_list)
    table = render_table(
        ["graph", "n", "D", "rounds", "λ"],
        rows,
        title=(
            f"E10 rounds vs diameter at fixed ℓ={LENGTH} — fitted D-exponent "
            f"{fit.exponent:.2f} (√(ℓD) predicts ~0.5; naive predicts 0)"
        ),
    )
    reporter.emit("E10_diameter", table)

    # √D-like growth: clearly sublinear, clearly positive.
    assert 0.25 <= fit.exponent <= 0.8, fit
    # Naive is flat in D by construction.
    naive_rounds = {naive_random_walk(torus_graph(4, c), 0, LENGTH, seed=1).rounds for c in (8, 64)}
    assert naive_rounds == {LENGTH}

    g = torus_graph(4, 32)
    benchmark.pedantic(
        lambda: single_random_walk(g, 0, LENGTH, seed=83, record_paths=False),
        rounds=3,
        iterations=1,
    )


def test_e10_lambda_tradeoff(benchmark, reporter):
    """The U-shaped cost in λ that the √(ℓD) choice sits at the bottom of."""
    g = torus_graph(8, 8)
    length = 8000
    default = single_random_walk(g, 0, length, seed=89, record_paths=False)
    rows = []
    costs = {}
    for factor, label in [(0.25, "λ/4"), (0.5, "λ/2"), (1.0, "λ (default)"), (2.0, "2λ"), (4.0, "4λ")]:
        lam = max(1, int(default.lam * factor))
        res = single_random_walk(g, 0, length, seed=89, lam=lam, record_paths=False)
        phase1 = res.phase_rounds.get("phase1", 0)
        stitching = res.phase_rounds.get("sample-destination", 0) + res.phase_rounds.get(
            "stitch-route", 0
        )
        costs[label] = res.rounds
        rows.append((label, lam, phase1, stitching, res.rounds))
    table = render_table(
        ["λ choice", "λ", "phase1 rounds", "stitching rounds", "total"],
        rows,
        title=f"E10 λ tradeoff on torus(8x8), ℓ={length}: phase1 ∝ λ vs stitching ∝ ℓD/λ",
    )
    reporter.emit("E10_diameter", table)

    # The default must be within 35% of the best sampled point, and the
    # extremes must both be worse than the default (U shape).
    best = min(costs.values())
    assert costs["λ (default)"] <= 1.35 * best, costs
    assert costs["λ/4"] > costs["λ (default)"]
    assert costs["4λ"] > costs["λ (default)"]
    # Phase 1 grows with λ; stitching shrinks with λ.
    assert rows[0][2] < rows[-1][2]
    assert rows[0][3] > rows[-1][3]

    benchmark.pedantic(
        lambda: single_random_walk(g, 0, length, seed=89, lam=default.lam, record_paths=False),
        rounds=3,
        iterations=1,
    )
