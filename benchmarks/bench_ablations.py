"""A1–A3 — ablations of the paper's design choices (DESIGN.md §4).

A1  Degree-proportional Phase-1 pools (the §2.1 change over PODC'09):
    on skewed-degree graphs, uniform per-node pools starve high-degree
    connectors — measured as GET-MORE-WALKS invocations — while
    degree-proportional pools of the *same total size* do not.

A2  Count aggregation + reservoir stopping in GET-MORE-WALKS: shipping
    every token individually (what pre-sampling each walk's length would
    force) congests edges; the aggregated protocol stays at congestion 1.

A3  The §1.2 stationary shortcut: once ℓ exceeds the mixing time, the
    ℓ-step law is within TV ≈ 0 of stationary, so an application that only
    needs an *approximate* sample can stop paying per-ℓ costs — but for
    ℓ below τ_mix the shortcut is badly wrong, which is why exact sampling
    (this paper) matters in that regime.
"""

from __future__ import annotations


import numpy as np

from repro.congest import Network
from repro.graphs import star_graph, torus_graph
from repro.markov import WalkSpectrum, exact_mixing_time
from repro.util.rng import derive_rng
from repro.util.tables import render_table
from repro.walks import (
    WalkStore,
    perform_short_walks,
    single_random_walk,
    stitch_walk,
    token_counts,
)


def _run_pool_policy(graph, length, lam, counts, seed):
    """Phase 1 with explicit pool sizes, then stitching; returns metrics."""
    net = Network(graph, seed=seed)
    store = WalkStore()
    rng = derive_rng(seed, "ablation")
    phase1_rounds = perform_short_walks(net, store, lam, rng, counts=counts)
    hub_pool = store.count_for_source(0)
    _, _, segments, connectors, gmw_calls, _ = stitch_walk(
        net,
        store,
        0,
        length,
        lam,
        rng,
        loop_margin=2 * lam,
        gmw_count=max(1, length // lam),
        randomized_lengths=True,
        record_paths=False,
        tree_cache={},
    )
    hub_hits = sum(1 for c in connectors if c == 0)
    return phase1_rounds, hub_pool, hub_hits, gmw_calls, net.rounds


def test_a1_degree_proportional_pools(benchmark, reporter):
    """§2.1's pool-sizing change, isolated on the star.

    The hub is the connector for ~half the stitches, so its pool must scale
    with its degree.  Degree-proportional allocation achieves that with
    ``Σdeg = 2m`` tokens.  A uniform allocation has two bad options: same
    *total* budget (hub pool collapses to ~2 → GET-MORE-WALKS churn), or
    same *hub guarantee* (every node gets d_max tokens → Phase-1 congestion
    multiplies by ~d_max/avg-degree, the ``η/δ``-style blowup the paper
    removes).
    """
    g = star_graph(48)
    length = 1500
    deg_counts = token_counts(g.degrees, 1.0, degree_proportional=True)
    total = int(deg_counts.sum())
    per_node_same_total = max(1, round(total / g.n))
    hub_degree = g.degree(0)
    policies = [
        ("degree-proportional (paper)", deg_counts),
        ("uniform, same total", np.full(g.n, per_node_same_total, dtype=np.int64)),
        ("uniform, same hub pool", np.full(g.n, hub_degree, dtype=np.int64)),
    ]
    rows = []
    results = {}
    for policy, counts in policies:
        # Use the theorem-scale λ the algorithm itself would pick.
        from repro.walks import single_walk_params

        lam = single_walk_params(length, 4, n=g.n).lam
        metrics = _run_pool_policy(g, length, lam, counts, seed=61)
        results[policy] = metrics
        rows.append((policy, int(counts.sum()), *metrics))
    table = render_table(
        ["Phase-1 pool policy", "tokens", "phase1 rounds", "hub pool", "hub connector hits", "GMW calls", "total rounds"],
        rows,
        title=f"A1 pool policy on star(48), ℓ={length}",
    )
    reporter.emit("A_ablations", table)

    deg = results["degree-proportional (paper)"]
    same_total = results["uniform, same total"]
    same_hub = results["uniform, same hub pool"]
    # Paper policy: the hub's pool covers every one of its connector hits.
    assert deg[1] >= deg[2], rows
    # Uniform same-total: the hub pool cannot cover its hits (starvation —
    # the stitching survives only by paying GET-MORE-WALKS refills).
    assert same_total[1] < same_total[2], rows
    assert same_total[3] > 0, rows
    # Uniform same-hub-guarantee: Phase-1 congestion blows up ~d_max/avg.
    assert same_hub[0] > 5 * deg[0], rows

    benchmark.pedantic(
        lambda: _run_pool_policy(g, length, 30, deg_counts, seed=63),
        rounds=3,
        iterations=1,
    )


def test_a2_count_aggregation(benchmark, reporter):
    """Congestion of GET-MORE-WALKS traffic with and without aggregation."""
    g = star_graph(16)
    count, lam = 600, 10
    rng = derive_rng(67, "a2")

    # Aggregated (the paper's protocol): one (source, count) message/edge.
    net_agg = Network(g, seed=0)
    from repro.walks import get_more_walks

    rounds_agg = get_more_walks(net_agg, WalkStore(), 0, count, lam, rng)

    # Naive shipping: every token is its own message (what per-token
    # remaining-length counters would force).
    net_raw = Network(g, seed=0)
    positions = np.zeros(count, dtype=np.int64)
    with net_raw.phase("raw"):
        for _ in range(lam):
            slots = g.step_walk_slots(positions, derive_rng(69, "raw"))
            net_raw.deliver_step(slots, words=2)  # no aggregation
            positions = g.csr_target[slots]
    rounds_raw = net_raw.rounds

    rows = [
        ("aggregated counts + reservoir (paper)", rounds_agg, net_agg.ledger.max_congestion),
        ("per-token messages (ablation)", rounds_raw, net_raw.ledger.max_congestion),
    ]
    table = render_table(
        ["GET-MORE-WALKS transport", "rounds", "max edge congestion"],
        rows,
        title=f"A2 count aggregation on star(16), {count} walks, λ={lam}",
    )
    reporter.emit("A_ablations", table)

    assert rounds_agg < rounds_raw / 5
    assert net_agg.ledger.max_congestion == 1
    assert net_raw.ledger.max_congestion > 10

    benchmark.pedantic(
        lambda: get_more_walks(Network(g, seed=1), WalkStore(), 0, count, lam, derive_rng(71, "b")),
        rounds=3,
        iterations=1,
    )


def test_a3_stationary_shortcut(benchmark, reporter):
    """TV(ℓ-step law, stationary) vs ℓ: where O(D) sampling would suffice."""
    g = torus_graph(5, 5)
    spec = WalkSpectrum(g)
    tau = exact_mixing_time(g, 0, spectrum=spec)
    rows = []
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0]:
        length = max(1, int(round(mult * tau)))
        tv = spec.tv_from_stationary(0, length)
        res = single_random_walk(g, 0, length, seed=73, record_paths=False)
        rows.append((f"{mult}·τ", length, round(tv, 4), res.rounds))
    table = render_table(
        ["ℓ", "steps", "TV(π_x(ℓ), π)", "exact-sampling rounds"],
        rows,
        title=(
            f"A3 stationary shortcut on torus(5x5), τ_mix={tau}: above ~2τ an "
            "approximate sample is nearly free (O(D)), below τ it is badly wrong"
        ),
    )
    reporter.emit("A_ablations", table)

    tvs = [row[2] for row in rows]
    assert tvs[0] > 0.2      # ℓ = τ/4: stationary sampling is a bad proxy
    assert tvs[-1] < 0.02    # ℓ = 4τ: the shortcut is sound
    assert all(a >= b - 1e-12 for a, b in zip(tvs, tvs[1:]))  # monotone (Lemma 4.4)

    benchmark.pedantic(
        lambda: spec.tv_from_stationary(0, tau),
        rounds=3,
        iterations=1,
    )
