"""E2 — Theorem 2.8: k walks in Õ(min(√(kℓD) + k, k + ℓ)) rounds.

Sweeps ``k`` at a fixed walk length and reports measured rounds against
both branches of the theorem's min, confirming (a) sub-linear growth in
``k`` (batching beats k independent runs), (b) the regime switch to the
naive-parallel branch once ``√(kℓD) + k`` exceeds ``k + ℓ``.
"""

from __future__ import annotations

import math


from repro.graphs import diameter, hypercube_graph
from repro.util.tables import render_table
from repro.walks import many_random_walks, single_random_walk

LENGTH = 24000
KS = [1, 2, 4, 8]


def test_e2_k_scaling(benchmark, reporter):
    graph = hypercube_graph(7)
    d = diameter(graph)
    rows = []
    for k in KS:
        res = many_random_walks(graph, [0] * k, LENGTH, seed=23)
        separate = sum(
            single_random_walk(graph, 0, LENGTH, seed=100 + i, record_paths=False).rounds
            for i in range(k)
        )
        bound_stitched = math.sqrt(k * LENGTH * d) + k
        bound_naive = k + LENGTH
        rows.append(
            (
                k,
                res.rounds,
                separate,
                res.mode,
                round(min(bound_stitched, bound_naive)),
                round(res.rounds / min(bound_stitched, bound_naive), 2),
            )
        )
    table = render_table(
        ["k", "batched rounds", "k separate runs", "mode", "min-bound", "rounds/bound"],
        rows,
        title=f"E2 MANY-RANDOM-WALKS on hypercube(d=7), ℓ={LENGTH}, D={d}",
    )
    reporter.emit("E2_many_walks", table)

    # Batching must beat running k walks separately for every k > 1.
    for row in rows[1:]:
        assert row[1] < row[2], row
    # Growth in k must be sublinear (√k shape): k=8 costs well under 8x k=1.
    assert rows[-1][1] < 5 * rows[0][1]
    # rounds/bound ratio stays within a constant band (no hidden blowup).
    ratios = [row[5] for row in rows]
    assert max(ratios) / min(ratios) < 6

    benchmark.pedantic(
        lambda: many_random_walks(graph, [0] * 4, 4000, seed=29),
        rounds=3,
        iterations=1,
    )


def test_e2_regime_switch(benchmark, reporter):
    """The theorem's min: large k with short walks flips to naive-parallel."""
    graph = hypercube_graph(6)
    rows = []
    for k, length in [(2, 4000), (8, 2000), (32, 500), (64, 120), (128, 60)]:
        res = many_random_walks(graph, [0] * k, length, seed=31)
        rows.append((k, length, res.mode, res.rounds, res.lam))
    table = render_table(
        ["k", "length", "mode", "rounds", "λ"],
        rows,
        title="E2 regime switch (λ > ℓ → naive-parallel branch of the min)",
    )
    reporter.emit("E2_many_walks", table)

    assert rows[0][2] == "stitched"
    assert rows[-1][2] == "naive-parallel"

    benchmark.pedantic(
        lambda: many_random_walks(graph, [0] * 64, 60, seed=37),
        rounds=3,
        iterations=1,
    )
