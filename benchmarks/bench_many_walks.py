"""E2 — Theorem 2.8: k walks in Õ(min(√(kℓD) + k, k + ℓ)) rounds.

Sweeps ``k`` at a fixed walk length and reports measured rounds against
both branches of the theorem's min, confirming (a) sub-linear growth in
``k`` (batching beats k independent runs), (b) the regime switch to the
naive-parallel branch once ``√(kℓD) + k`` exceeds ``k + ℓ``.

The ``batch_k_walks`` sweep extends this toward the k·ℓ regimes of
arXiv:1201.1363: on the n=10k random regular graph it serves one pooled
k-walk request per k ∈ {16, 64, 256} twice — with the engine's serial
per-source stitching loop (the PR-2 shape, ``batch=False``) and with the
interleaved batch regime (one SAMPLE-DESTINATION round trip serves every
walk parked at a connector, pipelined on a shared tree) — and records the
simulated-round ratio in ``BENCH_HOTPATHS.json``::

    PYTHONPATH=src python benchmarks/bench_many_walks.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_many_walks.py --quick   # tiny config

``tests/test_perf_smoke.py`` keeps a fast live guard (batch strictly beats
serial at k=64) plus a static check on the committed section in tier-1.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.engine import WalkEngine
from repro.graphs import diameter, hypercube_graph, random_regular_graph
from repro.util.tables import render_table
from repro.walks import many_random_walks, single_random_walk

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_HOTPATHS.json"

LENGTH = 24000
KS = [1, 2, 4, 8]

BATCH_N = 10_000
BATCH_DEGREE = 4
BATCH_LENGTH = 512
BATCH_KS = [16, 64, 256]
BATCH_SEED = 1201
QUICK_BATCH = {"n": 256, "degree": 4, "length": 256, "ks": [4, 16], "seed": 1201}


def bench_batch_k_walks(
    n: int = BATCH_N,
    degree: int = BATCH_DEGREE,
    length: int = BATCH_LENGTH,
    ks: list[int] | None = None,
    seed: int = BATCH_SEED,
) -> dict:
    """Serial-loop vs batch-stitched simulated rounds on one k-walk request.

    Both engines prepare identical pools first (same seed, same λ policy),
    so the recorded per-request rounds isolate the serving regime: the
    serial per-source loop pays a full SAMPLE-DESTINATION round trip per
    segment per walk, the batch regime pipelines every walk parked at a
    connector through shared-tree sweeps.
    """
    graph = random_regular_graph(n, degree, seed)
    rows = []
    for k in ks if ks is not None else BATCH_KS:
        sources = [(i * 37) % graph.n for i in range(k)]
        serial_engine = WalkEngine(graph, seed=seed, record_paths=False)
        serial_engine.prepare(length_hint=length)
        serial = serial_engine.walks(sources, length, batch=False)
        batch_engine = WalkEngine(graph, seed=seed, record_paths=False)
        batch_engine.prepare(length_hint=length)
        batch = batch_engine.walks(sources, length)
        assert serial.mode == "stitched" and batch.mode == "batch-stitched"
        rows.append(
            {
                "k": k,
                "length": length,
                "lam": batch.lam,
                "serial_rounds": serial.rounds,
                "batch_rounds": batch.rounds,
                "rounds_speedup": serial.rounds / batch.rounds,
                "serial_report_rounds": serial.phase_rounds.get("report", 0),
                "batch_report_rounds": batch.phase_rounds.get("report", 0),
            }
        )
    return {
        "schema": "bench_batch_k_walks/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "rows": rows,
    }


def bench_lambda_retune(
    n: int = BATCH_N,
    degree: int = BATCH_DEGREE,
    length: int = BATCH_LENGTH,
    ks: list[int] | None = None,
    seed: int = BATCH_SEED,
) -> dict:
    """Before/after the k-enlarged λ policy on pooled batch requests.

    *Before*: the pool is prepared with the single-walk ``Θ(√(ℓD))`` λ
    (``prepare(length_hint=ℓ)`` — the PR-3 behavior, blind to k), then one
    k-walk batch request is served.  *After*: a cold engine auto-prepares
    on the same batch request, which now picks λ from Theorem 2.8's
    ``Θ(√(kℓD) + k)``.  Longer segments mean fewer SAMPLE-DESTINATION
    sweep generations per walk, so the request's simulated rounds drop as
    k grows; the extra Phase-1 cost of the longer λ is reported alongside
    (it is paid once per session, the request win repeats per batch).
    """
    graph = random_regular_graph(n, degree, seed)
    rows = []
    for k in ks if ks is not None else BATCH_KS:
        sources = [(i * 37) % graph.n for i in range(k)]

        before_engine = WalkEngine(graph, seed=seed, record_paths=False)
        before_engine.prepare(length_hint=length)
        before_prep = before_engine.network.rounds
        before = before_engine.walks(sources, length)

        # Cold engine: auto-preparation (and its Phase 1) lands inside the
        # first request's delta; subtract it so both columns compare pure
        # serving rounds, and report the prep costs side by side.
        after_engine = WalkEngine(graph, seed=seed, record_paths=False)
        after = after_engine.walks(sources, length)
        after_prep = after.phase_rounds.get("phase1", 0)
        after_rounds = after.rounds - after_prep

        rows.append(
            {
                "k": k,
                "length": length,
                "lam_before": before.lam,
                "lam_after": after.lam,
                "mode_after": after.mode,
                "request_rounds_before": before.rounds,
                "request_rounds_after": after_rounds,
                "rounds_speedup": before.rounds / after_rounds,
                "prep_rounds_before": before_prep,
                "prep_rounds_after": after_prep,
            }
        )
    return {
        "schema": "bench_lambda_retune/v1",
        "n": graph.n,
        "degree": degree,
        "seed": seed,
        "rows": rows,
    }


def test_e2_k_scaling(benchmark, reporter):
    graph = hypercube_graph(7)
    d = diameter(graph)
    rows = []
    for k in KS:
        res = many_random_walks(graph, [0] * k, LENGTH, seed=23)
        separate = sum(
            single_random_walk(graph, 0, LENGTH, seed=100 + i, record_paths=False).rounds
            for i in range(k)
        )
        bound_stitched = math.sqrt(k * LENGTH * d) + k
        bound_naive = k + LENGTH
        rows.append(
            (
                k,
                res.rounds,
                separate,
                res.mode,
                round(min(bound_stitched, bound_naive)),
                round(res.rounds / min(bound_stitched, bound_naive), 2),
            )
        )
    table = render_table(
        ["k", "batched rounds", "k separate runs", "mode", "min-bound", "rounds/bound"],
        rows,
        title=f"E2 MANY-RANDOM-WALKS on hypercube(d=7), ℓ={LENGTH}, D={d}",
    )
    reporter.emit("E2_many_walks", table)

    # Batching must beat running k walks separately for every k > 1.
    for row in rows[1:]:
        assert row[1] < row[2], row
    # Growth in k must be sublinear (√k shape): k=8 costs well under 8x k=1.
    assert rows[-1][1] < 5 * rows[0][1]
    # rounds/bound ratio stays within a constant band (no hidden blowup).
    ratios = [row[5] for row in rows]
    assert max(ratios) / min(ratios) < 6

    benchmark.pedantic(
        lambda: many_random_walks(graph, [0] * 4, 4000, seed=29),
        rounds=3,
        iterations=1,
    )


def test_e2_regime_switch(benchmark, reporter):
    """The theorem's min: large k with short walks flips to naive-parallel."""
    graph = hypercube_graph(6)
    rows = []
    for k, length in [(2, 4000), (8, 2000), (32, 500), (64, 120), (128, 60)]:
        res = many_random_walks(graph, [0] * k, length, seed=31)
        rows.append((k, length, res.mode, res.rounds, res.lam))
    table = render_table(
        ["k", "length", "mode", "rounds", "λ"],
        rows,
        title="E2 regime switch (λ > ℓ → naive-parallel branch of the min)",
    )
    reporter.emit("E2_many_walks", table)

    assert rows[0][2] == "stitched"
    assert rows[-1][2] == "naive-parallel"

    benchmark.pedantic(
        lambda: many_random_walks(graph, [0] * 64, 60, seed=37),
        rounds=3,
        iterations=1,
    )


def test_batch_regime_rounds(reporter):
    """Batch stitching beats the serial loop for every k (small config)."""
    section = bench_batch_k_walks(**QUICK_BATCH)
    rows = section["rows"]
    table = render_table(
        ["k", "λ", "serial rounds", "batch rounds", "speedup"],
        [
            (r["k"], r["lam"], r["serial_rounds"], r["batch_rounds"], f"{r['rounds_speedup']:.2f}x")
            for r in rows
        ],
        title=f"batch vs serial stitching, n={section['n']} regular({section['degree']})",
    )
    reporter.emit("E2_many_walks", table)
    for r in rows:
        assert r["batch_rounds"] < r["serial_rounds"], r
        # Satellite invariant: both regimes charge the identical pipelined
        # O(height + k) report convergecast.
        assert r["batch_report_rounds"] == r["serial_report_rounds"], r


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    section = bench_batch_k_walks(**QUICK_BATCH) if quick else bench_batch_k_walks()
    retune = bench_lambda_retune(**QUICK_BATCH) if quick else bench_lambda_retune()
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    results["batch_k_walks"] = section
    results["batch_lambda_retune"] = retune
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"batch vs serial k-walk serving on n={section['n']} regular({section['degree']}):")
    for r in section["rows"]:
        print(
            f"  k={r['k']:>4}  λ={r['lam']:>4}  serial {r['serial_rounds']:>8} rounds  "
            f"batch {r['batch_rounds']:>8} rounds  ({r['rounds_speedup']:.2f}x)"
        )
    print("\nλ re-tune for pooled batches (single-walk λ → k-enlarged λ):")
    for r in retune["rows"]:
        print(
            f"  k={r['k']:>4}  λ {r['lam_before']:>4} → {r['lam_after']:>4}  request "
            f"{r['request_rounds_before']:>8} → {r['request_rounds_after']:>8} rounds  "
            f"({r['rounds_speedup']:.2f}x)  prep {r['prep_rounds_before']} → {r['prep_rounds_after']}"
        )
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
