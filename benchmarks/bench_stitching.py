"""F2 — the stitching picture (Figure 2) as measured statistics.

Figure 2 illustrates Phase 2: the source's walk is assembled from
``Θ(ℓ/λ)`` short walks joined at connectors.  This bench quantifies the
picture on real executions:

* number of stitches ≈ ℓ / E[segment length] = ℓ / (1.5λ − 0.5);
* segment lengths uniform on [λ, 2λ−1] (mean ≈ 1.5λ);
* GET-MORE-WALKS never fires at theorem parameters (the Lemma 2.6/2.7
  regime), so Phase 1's pool suffices;
* the phase-by-phase round breakdown (setup / phase1 / sampling / routing /
  tail) that makes up the Õ(√(ℓD)) total.
"""

from __future__ import annotations


from repro.graphs import torus_graph
from repro.util.tables import render_table
from repro.walks import single_random_walk

LENGTH = 6000


def test_f2_stitch_statistics(benchmark, reporter):
    g = torus_graph(8, 8)
    trials = 8
    rows = []
    for seed in range(trials):
        res = single_random_walk(g, 0, LENGTH, seed=seed)
        expected_stitches = LENGTH / (1.5 * res.lam - 0.5)
        seg_mean = sum(s.length for s in res.segments) / max(len(res.segments), 1)
        rows.append(
            (
                seed,
                res.lam,
                len(res.segments),
                round(expected_stitches, 1),
                round(seg_mean, 1),
                round(1.5 * res.lam - 0.5, 1),
                res.get_more_walks_calls,
            )
        )
    table = render_table(
        ["seed", "λ", "#stitches", "ℓ/E[seg]", "mean seg len", "1.5λ−0.5", "GMW calls"],
        rows,
        title=f"F2 stitch statistics on torus(8x8), ℓ={LENGTH}",
    )
    reporter.emit("F2_stitching", table)

    for row in rows:
        assert abs(row[2] - row[3]) <= 0.35 * row[3], row  # count tracks ℓ/E[seg]
        assert abs(row[4] - row[5]) <= 0.2 * row[5], row  # mean ≈ 1.5λ
        assert row[6] == 0  # Lemma 2.6/2.7 regime: pool never exhausted

    benchmark.pedantic(
        lambda: single_random_walk(g, 0, LENGTH, seed=0, record_paths=False),
        rounds=3,
        iterations=1,
    )


def test_f2_phase_breakdown(benchmark, reporter):
    g = torus_graph(8, 8)
    res = single_random_walk(g, 0, LENGTH, seed=99)
    rows = [
        (phase, rounds, f"{100 * rounds / res.rounds:.0f}%")
        for phase, rounds in sorted(res.phase_rounds.items(), key=lambda kv: -kv[1])
    ]
    rows.append(("TOTAL", res.rounds, "100%"))
    table = render_table(
        ["phase", "rounds", "share"],
        rows,
        title=f"F2 round breakdown, torus(8x8), ℓ={LENGTH} (naive would be {LENGTH})",
    )
    reporter.emit("F2_stitching", table)

    assert res.rounds < LENGTH
    assert sum(res.phase_rounds.values()) == res.rounds
    # Phase 1 and the stitching sweeps are the two dominant costs.
    top_two = {rows[0][0], rows[1][0]}
    assert "phase1" in top_two

    benchmark.pedantic(
        lambda: single_random_walk(g, 0, LENGTH, seed=99, record_paths=False),
        rounds=3,
        iterations=1,
    )
