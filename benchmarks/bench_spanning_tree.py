"""E8 — Theorem 4.1: random spanning trees in Õ(√(mD)) rounds, uniformly.

Three measurements:

1. **Cost sweep**: RST rounds across growing tori, against the ``√(mD)``
   curve and against the naive-schedule equivalent (running the same
   doubling schedule with ℓ-round naive walks) — the distributed walk
   speedup must show.
2. **Uniformity**: empirical tree frequencies on K4 versus the exact
   uniform law over its 16 spanning trees (chi-square), for the full
   distributed pipeline, plus cross-checks of the centralized
   Aldous–Broder and Wilson samplers.
3. **Worst-case cover**: the lollipop (Θ(n³) cover time) still terminates
   within the doubling schedule.
"""

from __future__ import annotations

import math
from collections import Counter


from repro.apps import aldous_broder_tree, random_spanning_tree, wilson_tree
from repro.graphs import (
    complete_graph,
    diameter,
    lollipop_graph,
    torus_graph,
    tree_probabilities,
)
from repro.util.rng import make_rng
from repro.util.stats import chi_square_goodness_of_fit, total_variation
from repro.util.tables import render_table


def test_e8_cost_sweep(benchmark, reporter):
    rows = []
    for side in [4, 6, 8, 10]:
        g = torus_graph(side, side)
        d = diameter(g)
        res = random_spanning_tree(g, seed=41)
        naive_equivalent = sum(p.walks * p.length for p in res.phases)
        curve = math.sqrt(g.m * d)
        rows.append(
            (
                f"torus({side}x{side})",
                g.m,
                d,
                res.rounds,
                naive_equivalent,
                round(curve, 0),
                round(res.rounds / curve, 1),
                res.cover_time,
            )
        )
    table = render_table(
        ["graph", "m", "D", "RST rounds", "naive schedule", "√(mD)", "rounds/√(mD)", "cover time"],
        rows,
        title="E8 distributed RST cost vs Õ(√(mD)) (Theorem 4.1)",
    )
    reporter.emit("E8_spanning_tree", table)

    for row in rows:
        assert row[3] < row[4], row  # beats its own naive schedule
    # rounds/√(mD) stays in a bounded band (the Õ(·) claim's shape).
    ratios = [row[6] for row in rows]
    assert max(ratios) / min(ratios) < 8

    g = torus_graph(6, 6)
    benchmark.pedantic(lambda: random_spanning_tree(g, seed=43), rounds=3, iterations=1)


def test_e8_uniformity(benchmark, reporter):
    g = complete_graph(4)
    expected = tree_probabilities(g)
    n_samples = 1600

    distributed = Counter(
        random_spanning_tree(g, seed=10_000 + i, initial_length=64).tree
        for i in range(n_samples)
    )
    rng = make_rng(5)
    centralized = Counter(aldous_broder_tree(g, 0, rng)[0] for _ in range(n_samples))
    wilson = Counter(wilson_tree(g, 0, rng) for _ in range(n_samples))

    def tv(counts: Counter) -> float:
        emp = {t: c / n_samples for t, c in counts.items()}
        return total_variation(emp, expected)

    rows = [
        ("distributed Aldous–Broder", len(distributed), round(tv(distributed), 4)),
        ("centralized Aldous–Broder", len(centralized), round(tv(centralized), 4)),
        ("Wilson (independent sampler)", len(wilson), round(tv(wilson), 4)),
        ("exact uniform", len(expected), 0.0),
    ]
    table = render_table(
        ["sampler", "#distinct trees (of 16)", "TV to uniform"],
        rows,
        title=f"E8 RST uniformity on K4, {n_samples} samples per sampler",
    )
    reporter.emit("E8_spanning_tree", table)

    for counts in (distributed, centralized, wilson):
        assert len(counts) == 16
        result = chi_square_goodness_of_fit(counts, expected)
        assert not result.rejects_at(1e-5), result

    benchmark.pedantic(
        lambda: random_spanning_tree(g, seed=77, initial_length=64),
        rounds=3,
        iterations=1,
    )


def test_e8_worst_case_cover(benchmark, reporter):
    g = lollipop_graph(12, 12)
    res = random_spanning_tree(g, seed=47)
    assert g.subgraph_is_spanning_tree(res.edges)
    rows = [
        (
            "lollipop(12,12)",
            g.n,
            g.m,
            res.rounds,
            res.cover_time,
            res.final_length,
            len(res.phases),
        )
    ]
    table = render_table(
        ["graph", "n", "m", "RST rounds", "cover time", "final ℓ", "phases"],
        rows,
        title="E8 worst-case cover-time topology (Θ(n³) cover)",
    )
    reporter.emit("E8_spanning_tree", table)

    benchmark.pedantic(lambda: random_spanning_tree(g, seed=49), rounds=3, iterations=1)
