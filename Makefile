# Developer entry points.  Tier-1 verify is `make test` (equivalently
# `PYTHONPATH=src python -m pytest -x -q`); the lint and static-analysis
# gates also run inside it via tests/test_lint.py and
# tests/test_static_analysis.py.

PY := PYTHONPATH=src python

.PHONY: test lint analyze slow bench-hotpaths bench-engine-reuse bench-batch-walks bench-serve bench-churn bench-faults bench-tenants bench-obs

test:
	$(PY) -m pytest -x -q

# AST invariant analyzer (repro.analysis): phase registry, bulk-only token
# paths, seeded RNG, fast-path pairing, capture balance, dead imports,
# observer passivity.
analyze:
	$(PY) -m repro.analysis src

lint: analyze
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — running the AST dead-import gate only"; \
	fi
	$(PY) -m pytest -q tests/test_lint.py

slow:
	$(PY) -m pytest -q -m slow tests benchmarks/bench_perf_hotpaths.py benchmarks/bench_engine_reuse.py

bench-hotpaths:
	$(PY) benchmarks/bench_perf_hotpaths.py

bench-engine-reuse:
	$(PY) benchmarks/bench_engine_reuse.py

bench-batch-walks:
	$(PY) benchmarks/bench_many_walks.py

bench-serve:
	$(PY) benchmarks/bench_serve.py

bench-churn:
	$(PY) benchmarks/bench_churn.py

bench-faults:
	$(PY) benchmarks/bench_faults.py

bench-tenants:
	$(PY) benchmarks/bench_tenants.py

bench-obs:
	$(PY) benchmarks/bench_obs.py
